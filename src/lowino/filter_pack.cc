#include "lowino/filter_pack.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/saturate.h"

namespace lowino {
namespace {

/// U = G g G^T for one r x r filter slice, double precision.
void transform_filter_2d(const TransformMatrices& tm, const float* g, double* u) {
  const std::size_t a = tm.alpha, r = tm.r;
  std::vector<double> tmp(a * r);
  for (std::size_t i = 0; i < a; ++i) {
    for (std::size_t j = 0; j < r; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < r; ++k) s += tm.g(i, k) * static_cast<double>(g[k * r + j]);
      tmp[i * r + j] = s;
    }
  }
  for (std::size_t i = 0; i < a; ++i) {
    for (std::size_t j = 0; j < a; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < r; ++k) s += tmp[i * r + k] * tm.g(j, k);
      u[i * a + j] = s;
    }
  }
}

}  // namespace

double reference_transformed_filter(const TransformMatrices& tm,
                                    std::span<const float> weights, std::size_t channels,
                                    std::size_t k, std::size_t c, std::size_t t) {
  const std::size_t r = tm.r;
  std::vector<double> u(tm.alpha * tm.alpha);
  transform_filter_2d(tm, weights.data() + (k * channels + c) * r * r, u.data());
  return u[t];
}

void transform_all_filters(const ConvDesc& desc, const TransformMatrices& tm,
                           std::span<const float> weights, std::vector<float>& u_all) {
  const std::size_t c_real = desc.in_channels;
  const std::size_t k_real = desc.out_channels;
  const std::size_t r = desc.kernel;
  const std::size_t t_elems = tm.alpha * tm.alpha;
  const std::size_t c64 = desc.padded_in_channels();
  const std::size_t k64 = desc.padded_out_channels();
  assert(weights.size() >= k_real * c_real * r * r);
  u_all.assign(t_elems * c64 * k64, 0.0f);
  std::vector<double> u(t_elems);
  for (std::size_t k = 0; k < k_real; ++k) {
    for (std::size_t c = 0; c < c_real; ++c) {
      transform_filter_2d(tm, weights.data() + (k * c_real + c) * r * r, u.data());
      for (std::size_t t = 0; t < t_elems; ++t) {
        u_all[(t * c64 + c) * k64 + k] = static_cast<float>(u[t]);
      }
    }
  }
}

void quantize_and_pack_transformed(const ConvDesc& desc, std::size_t t_elems,
                                   const std::vector<float>& u_all,
                                   const WinogradScales& scales,
                                   const Int8GemmBlocking& blocking,
                                   std::span<const float> bias, PackedFilters& out) {
  const std::size_t c_real = desc.in_channels;
  const std::size_t k_real = desc.out_channels;
  const std::size_t c64 = desc.padded_in_channels();
  const std::size_t k64 = desc.padded_out_channels();
  const std::size_t k_padded = scales.k_padded();

  out.layout = PackedFilterLayout(c64, k64, t_elems, blocking.c_blk, blocking.k_blk);
  out.k_padded = k_padded;
  assert(out.layout.k_blocks * out.layout.k_blk == k_padded);
  out.data.reset(out.layout.size());
  out.data.fill_zero();
  out.comp.reset(t_elems * k_padded);
  out.comp.fill_zero();
  for (std::size_t t = 0; t < t_elems; ++t) {
    for (std::size_t c = 0; c < c_real; ++c) {
      for (std::size_t k = 0; k < k_real; ++k) {
        const float scale = scales.filter_scale(t, k);
        const std::int8_t q = saturate_cast_i8(u_all[(t * c64 + c) * k64 + k] * scale);
        out.data[out.layout.offset(t, c, k)] = q;
        out.comp[t * k_padded + k] -= 128 * static_cast<std::int32_t>(q);
      }
    }
  }

  out.bias.reset(k64);
  out.bias.fill_zero();
  if (!bias.empty()) {
    assert(bias.size() >= k_real);
    std::memcpy(out.bias.data(), bias.data(), k_real * sizeof(float));
  }
}

void transform_and_pack_filters(const ConvDesc& desc, const WinogradGeometry& geo,
                                const TransformMatrices& tm, const LoWinoConfig& config,
                                std::span<const float> weights, std::span<const float> bias,
                                WinogradScales& scales, PackedFilters& out) {
  const std::size_t c_real = desc.in_channels;
  const std::size_t t_elems = geo.t_elems;
  assert(tm.r == desc.kernel && tm.alpha * tm.alpha == t_elems);

  // 1. Transform everything to the FP32 Winograd domain.
  const std::size_t c64 = desc.padded_in_channels();
  const std::size_t k64 = desc.padded_out_channels();
  std::vector<float> u_all;
  transform_all_filters(desc, tm, weights, u_all);

  // 2. Exact scales from the transformed values (filters are known offline;
  // no calibration needed — Section 4.2.2).
  const std::size_t k_padded = scales.k_padded();
  assert(k_padded >= k64);
  if (config.per_channel_filter_scales) {
    for (std::size_t t = 0; t < t_elems; ++t) {
      for (std::size_t k = 0; k < k_padded; ++k) {
        float amax = 0.0f;
        if (k < k64) {
          for (std::size_t c = 0; c < c_real; ++c) {
            amax = std::max(amax, std::abs(u_all[(t * c64 + c) * k64 + k]));
          }
        }
        scales.set_filter_scale(t, k, QuantParams::from_threshold(amax));
      }
    }
  } else {
    for (std::size_t t = 0; t < t_elems; ++t) {
      float amax = 0.0f;
      for (std::size_t c = 0; c < c_real; ++c) {
        for (std::size_t k = 0; k < desc.out_channels; ++k) {
          amax = std::max(amax, std::abs(u_all[(t * c64 + c) * k64 + k]));
        }
      }
      scales.set_filter_scale(t, 0, QuantParams::from_threshold(amax));
    }
  }

  // 3-4. Quantize, pack, compensation, bias.
  quantize_and_pack_transformed(desc, t_elems, u_all, scales, config.blocking, bias, out);
}

}  // namespace lowino

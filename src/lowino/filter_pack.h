// Offline filter transform, quantization and packing (Section 4.2.2).
//
// Filters are known ahead of inference, so this stage runs once:
//   1. U = G g G^T per (output channel k, input channel c), in double
//      precision (exactness of the offline path costs nothing at runtime);
//   2. exact per-(t, k) (or per-t) scales from the transformed values'
//      absolute maxima — filters need no calibration;
//   3. quantization to INT8 and packing into the vpdpbusd layout
//      [C/Cblk][K/Kblk][T][Cblk/4][Kblk*4];
//   4. the compensation rows comp[t][k] = -128 * sum_c U_q[t][c][k] (Eq. 9,
//      the "auxiliary matrix filled by -128" of the paper).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/aligned_buffer.h"
#include "lowino/engine_config.h"
#include "lowino/scales.h"
#include "tensor/conv_desc.h"
#include "tensor/layout.h"
#include "winograd/transform.h"

namespace lowino {

struct PackedFilters {
  PackedFilterLayout layout;
  AlignedBuffer<std::int8_t> data;
  AlignedBuffer<std::int32_t> comp;  ///< [T][k_padded] compensation rows
  AlignedBuffer<float> bias;         ///< [K64] (zero-padded)
  std::size_t k_padded = 0;
};

/// Transforms, quantizes and packs `weights` (row-major K x C x r x r FP32).
/// Writes the exact filter scales into `scales` and fills `out`.
/// `bias` may be empty (treated as zeros).
void transform_and_pack_filters(const ConvDesc& desc, const WinogradGeometry& geo,
                                const TransformMatrices& tm, const LoWinoConfig& config,
                                std::span<const float> weights, std::span<const float> bias,
                                WinogradScales& scales, PackedFilters& out);

/// Reference helper (tests): transformed FP32 filter value U[t][c][k] for the
/// given weights, computed independently of the packing code.
double reference_transformed_filter(const TransformMatrices& tm,
                                    std::span<const float> weights, std::size_t channels,
                                    std::size_t k, std::size_t c, std::size_t t);

/// Transforms all filters to the Winograd domain: u_all[t * c64 * k64 +
/// c * k64 + k] = (G g_{k,c} G^T)[t]; padded channels are zero.
void transform_all_filters(const ConvDesc& desc, const TransformMatrices& tm,
                           std::span<const float> weights, std::vector<float>& u_all);

/// Quantizes pre-transformed filters with the scales already present in
/// `scales` and packs them (+ compensation rows) into `out`. Shared by the
/// LoWino pack (exact absmax scales) and the down-scaling baselines (fixed
/// matrix-gain scales).
void quantize_and_pack_transformed(const ConvDesc& desc, std::size_t t_elems,
                                   const std::vector<float>& u_all,
                                   const WinogradScales& scales,
                                   const Int8GemmBlocking& blocking,
                                   std::span<const float> bias, PackedFilters& out);

}  // namespace lowino

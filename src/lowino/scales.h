// Winograd-domain quantization scales (Section 3).
//
// LoWino quantizes *after* the transforms, so scales are defined in the
// Winograd domain. Because de-quantization happens before the output
// transform (Eq. 3), scales may vary freely per tile position t and per
// output channel k without approximation; the de-quantization table stores
// the combined reciprocal 1 / (alpha_V[t] * alpha_U[t][k]).
#pragma once

#include <cstddef>
#include <vector>

#include "quant/histogram.h"
#include "quant/quantize.h"

namespace lowino {

class WinogradScales {
 public:
  WinogradScales() = default;
  WinogradScales(std::size_t t_elems, bool per_position, std::size_t k_padded,
                 bool per_channel_filters);

  /// Input scale for tile position t.
  float input_scale(std::size_t t) const {
    return input_[per_position_ ? t : 0].scale;
  }
  /// Filter scale for (t, k).
  float filter_scale(std::size_t t, std::size_t k) const {
    return filter_[filter_index(t, k)].scale;
  }

  void set_input_scale(std::size_t t, QuantParams p) { input_[per_position_ ? t : 0] = p; }
  void set_filter_scale(std::size_t t, std::size_t k, QuantParams p) {
    filter_[filter_index(t, k)] = p;
  }

  /// Builds the (t, k) de-quantization table used by the output transform:
  /// dequant[t * k_padded + k] = 1 / (input_scale(t) * filter_scale(t, k)).
  void build_dequant_table();
  const std::vector<float>& dequant_table() const { return dequant_; }

  std::size_t t_elems() const { return t_elems_; }
  std::size_t k_padded() const { return k_padded_; }
  bool per_position() const { return per_position_; }
  bool per_channel_filters() const { return per_channel_filters_; }

 private:
  std::size_t filter_index(std::size_t t, std::size_t k) const {
    return per_channel_filters_ ? t * k_padded_ + k : t;
  }

  std::size_t t_elems_ = 0;
  std::size_t k_padded_ = 0;
  bool per_position_ = true;
  bool per_channel_filters_ = true;
  std::vector<QuantParams> input_;
  std::vector<QuantParams> filter_;
  std::vector<float> dequant_;
};

/// Calibration accumulator: one histogram per tile position (or one overall),
/// fed with transformed-input values by LoWinoConvolution::calibrate().
class WinogradCalibrator {
 public:
  WinogradCalibrator() = default;
  WinogradCalibrator(std::size_t t_elems, bool per_position, std::size_t bins = 2048);

  /// Adds transformed values of tile position t.
  void collect(std::size_t t, std::span<const float> values);

  /// KL-calibrates every position and writes the input scales.
  void finalize_into(WinogradScales& scales) const;

  bool empty() const;

 private:
  bool per_position_ = true;
  std::vector<Histogram> histograms_;
};

}  // namespace lowino

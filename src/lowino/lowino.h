// Umbrella header: the LoWino public API.
//
// LoWino is a low-precision (INT8) Winograd convolution engine for AVX-512
// VNNI CPUs, reproducing Li, Jia, Feng & Wang, "LoWino: Towards Efficient
// Low-Precision Winograd Convolutions on Modern CPUs" (ICPP 2021).
//
// Quick start (see examples/quickstart.cpp):
//
//   lowino::ConvDesc desc{.batch = 1, .in_channels = 64, .out_channels = 64,
//                         .height = 56, .width = 56, .kernel = 3, .pad = 1};
//   lowino::LoWinoConfig cfg;           // F(4x4, 3x3) by default
//   lowino::LoWinoConvolution conv(desc, cfg);
//   conv.calibrate(sample_input);       // Winograd-domain KL calibration
//   conv.finalize_calibration();
//   conv.set_filters(weights, bias);    // offline transform + pack
//   conv.execute_nchw(input, output, &lowino::ThreadPool::global());
#pragma once

#include "lowino/convolution.h"
#include "lowino/engine_config.h"
#include "parallel/thread_pool.h"
#include "tensor/conv_desc.h"

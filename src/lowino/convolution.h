// LoWinoConvolution — the library's primary public API.
//
// Lifecycle (mirrors the paper's deployment flow):
//
//   LoWinoConvolution conv(desc, config);       // choose F(m x m, r x r) etc.
//   conv.calibrate(samples, n);                 // feed ~500 sample inputs
//   conv.finalize_calibration();                // KL thresholds (Eq. 7)
//   conv.set_filters(weights, bias);            // offline transform + pack
//   conv.execute_nchw(input, output, &pool);    // low-precision inference
//
// The input transform, batched INT8 GEMM and output transform run entirely in
// the blocked layouts of Table 1; execute_nchw packs/unpacks at the edges and
// execute_blocked skips even that (for chained layers in the NN runtime).
#pragma once

#include <cstdint>
#include <span>

#include "common/aligned_buffer.h"
#include "gemm/int8_gemm.h"
#include "lowino/engine_config.h"
#include "lowino/filter_pack.h"
#include "lowino/fused.h"
#include "lowino/input_transform.h"
#include "lowino/output_transform.h"
#include "lowino/scales.h"
#include "tensor/conv_desc.h"
#include "tensor/post_ops.h"
#include "winograd/transform.h"

namespace lowino {

class ThreadPool;

class LoWinoConvolution {
 public:
  /// Throws std::invalid_argument for non-unit stride or unsupported m/r.
  explicit LoWinoConvolution(const ConvDesc& desc, const LoWinoConfig& config = {});

  const ConvDesc& desc() const { return desc_; }
  const LoWinoConfig& config() const { return config_; }
  const WinogradGeometry& geometry() const { return geo_; }
  const TransformMatrices& transform() const { return *tm_; }
  const WinogradScales& scales() const { return scales_; }

  /// Accumulates calibration statistics from a batch of NCHW FP32 inputs
  /// with the layer's B x C x H x W shape. Call repeatedly, then finalize.
  /// `tile_stride` subsamples tiles (1 = use every tile).
  void calibrate(std::span<const float> input_nchw, std::size_t tile_stride = 1);

  /// Computes the Winograd-domain input scales from collected statistics.
  void finalize_calibration();

  /// Bypasses calibration: one uniform Winograd-domain threshold for every
  /// tile position (used by tests and the ablation bench).
  void set_uniform_input_threshold(float tau);

  /// Bypasses calibration with explicit per-position thresholds (length T).
  void set_input_thresholds(std::span<const float> taus);

  /// Offline filter transform + quantization + packing. `weights` is
  /// row-major K x C x r x r; `bias` (length K) is optional.
  void set_filters(std::span<const float> weights, std::span<const float> bias = {});

  bool ready() const { return filters_set_ && input_scales_set_; }

  /// Runs the convolution on an NCHW input, writing an NCHW output.
  /// `post` is the optional fused epilogue (residual +sum, ReLU) applied
  /// inside the de-quant/output-transform pass — see tensor/post_ops.h.
  void execute_nchw(std::span<const float> input, std::span<float> output,
                    ThreadPool* pool = nullptr, const PostOps& post = {});

  /// Runs on pre-blocked activations (B x [C/64] x H x W x 64). The residual
  /// of `post.sum` stays NCHW regardless (it is gathered plane-strided by the
  /// output transform).
  void execute_blocked(std::span<const float> input, std::span<float> output,
                       ThreadPool* pool = nullptr, const PostOps& post = {});

  /// Serving u8 hand-off configuration (tensor/dtype.h). After set_input_u8,
  /// execute_nchw_typed reads u8 bytes (q = round_ne(qp.scale * x) + 128) and
  /// the tile gather de-quantizes them on the fly with qp.inv_scale; after
  /// set_output_u8 the output epilogue gains the trailing requant stage
  /// (bias -> sum -> relu -> requant with qp.scale). Only execute_nchw_typed
  /// honors the configuration — the span-based FP32 entry points above are
  /// unaffected, so calibration/tuning flows stay unchanged.
  void set_input_u8(const QuantParams& qp) {
    in_u8_ = true;
    in_u8_qp_ = qp;
  }
  void set_output_u8(const QuantParams& qp) {
    out_u8_ = true;
    out_u8_qp_ = qp;
  }
  bool input_is_u8() const { return in_u8_; }
  bool output_is_u8() const { return out_u8_; }

  /// Runs on NCHW buffers whose element types follow the configured hand-off
  /// dtypes (u8 after set_input_u8 / set_output_u8, FP32 otherwise).
  /// `post.sum_u8` may supply a u8 residual with either configuration.
  void execute_nchw_typed(const void* input, void* output, ThreadPool* pool = nullptr,
                          const PostOps& post = {});

  BlockedActLayout input_layout() const { return in_layout_; }
  BlockedActLayout output_layout() const { return out_layout_; }

  /// Per-stage times of the last execute (only populated when
  /// config.collect_stage_times is set, which forces staged execution).
  const StageTimes& stage_times() const { return stage_times_; }

  /// Resolves config.execution_mode for a concrete thread count: kAuto picks
  /// kFused when the staged V + Z workspace exceeds the fused-mode threshold
  /// (config.fused_threshold_bytes, default num_threads x L2 size) — i.e.
  /// exactly when the staged intermediates stop fitting in cache.
  /// collect_stage_times always forces kStaged (the fused path has no
  /// per-stage boundaries to time).
  ExecutionMode resolve_execution_mode(std::size_t num_threads = 1) const;

  /// Bytes of intermediate state, for the memory-overhead analysis: the full
  /// V + Z tensors in staged mode, the per-thread panel arenas in fused mode.
  /// Passing kAuto reports the mode resolve_execution_mode(num_threads) picks.
  std::size_t workspace_bytes(ExecutionMode mode, std::size_t num_threads) const;

  /// Reports the mode + thread count of the last execute_*() call; before any
  /// execute an unresolved kAuto reports the staged tensors (the historical
  /// meaning — the full V + Z footprint this layer *would* materialize).
  std::size_t workspace_bytes() const {
    const ExecutionMode m =
        last_mode_ != ExecutionMode::kAuto ? last_mode_ : ExecutionMode::kStaged;
    return workspace_bytes(config_.execution_mode == ExecutionMode::kAuto
                               ? m
                               : config_.execution_mode,
                           last_threads_);
  }

  /// The mode the last execute_*() call actually ran in (kAuto until then).
  ExecutionMode last_execution_mode() const { return last_mode_; }

 private:
  void maybe_build_dequant();
  void execute_blocked_impl(const void* input, void* output, DType in_dtype, DType out_dtype,
                            ThreadPool* pool, const PostOps& post);

  ConvDesc desc_;
  LoWinoConfig config_;
  WinogradGeometry geo_;
  const TransformMatrices* tm_ = nullptr;
  CodeletPlan bt_plan_;
  CodeletPlan at_plan_;
  bool canonical_tm_ = false;

  TransformedInputLayout v_layout_;
  TransformedOutputLayout z_layout_;
  BlockedActLayout in_layout_;
  BlockedActLayout out_layout_;

  WinogradScales scales_;
  WinogradCalibrator calibrator_;
  PackedFilters filters_;
  bool filters_set_ = false;
  bool input_scales_set_ = false;

  AlignedBuffer<std::uint8_t> v_buf_;
  AlignedBuffer<std::int32_t> z_buf_;
  AlignedBuffer<float> in_blocked_scratch_;
  AlignedBuffer<float> out_blocked_scratch_;
  AlignedBuffer<std::uint8_t> in_blocked_u8_;
  AlignedBuffer<std::uint8_t> out_blocked_u8_;
  bool in_u8_ = false;
  bool out_u8_ = false;
  QuantParams in_u8_qp_;
  QuantParams out_u8_qp_;
  FusedWorkspace fused_ws_;
  Int8GemmScratch gemm_scratch_;
  StageTimes stage_times_;
  ExecutionMode last_mode_ = ExecutionMode::kAuto;
  std::size_t last_threads_ = 1;
};

/// Clamps and repairs a blocking configuration for a concrete layer shape
/// (Cblk <= padded C, Kblk <= padded K, Nblk <= padded tile count,
/// divisibility constraints). `total_tiles == 0` skips the Nblk clamp.
/// Exposed for the tuner.
Int8GemmBlocking adapt_blocking(Int8GemmBlocking blocking, std::size_t padded_c,
                                std::size_t padded_k, std::size_t total_tiles = 0);

}  // namespace lowino

// Fused de-quantization + output transform (Section 4.2.3).
//
// The GEMM already scattered each tile's T x 64 INT32 block consecutively, so
// this stage reads purely sequential memory:
//   1. de-quantize the T x 16 lanes with the per-(t, k) table (Eq. 6),
//   2. apply Y = A^T . Z . A with the codelet plan,
//   3. apply the fused epilogue (bias, optional residual +sum, optional ReLU
//      — see tensor/post_ops.h) and store the valid m x m region into the
//      blocked output image.
#pragma once

#include <cstdint>
#include <span>

#include "common/aligned_buffer.h"
#include "lowino/engine_config.h"
#include "lowino/scales.h"
#include "tensor/conv_desc.h"
#include "tensor/dtype.h"
#include "tensor/layout.h"
#include "winograd/codelet_plan.h"

namespace lowino {

class ThreadPool;

/// Per-thread scratch of the output transform (see InputTransformScratch).
struct OutputTransformScratch {
  AlignedBuffer<float> zf;    ///< de-quantized tile, one 16-lane group
  AlignedBuffer<float> wbuf;  ///< column-pass intermediate (m x alpha x 16)
  AlignedBuffer<float> ybuf;  ///< transformed output tile (m x m x 16)

  OutputTransformScratch() = default;
  OutputTransformScratch(std::size_t t_elems, std::size_t m, std::size_t alpha) {
    ensure(t_elems, m, alpha);
  }

  void ensure(std::size_t t_elems, std::size_t m, std::size_t alpha) {
    zf.ensure(t_elems * 16);
    wbuf.ensure(m * alpha * 16);
    ybuf.ensure(m * m * 16);
  }
};

struct OutputTransformContext {
  const ConvDesc* desc = nullptr;
  const WinogradGeometry* geo = nullptr;
  const CodeletPlan* at_plan = nullptr;  ///< plan for A^T (m x alpha)
  TransformedOutputLayout z_layout;
  BlockedActLayout out_layout;
  const float* bias = nullptr;  ///< [K64], may be null
  bool relu = false;
  /// Residual source for the fused "+sum" epilogue, or nullptr. NCHW with the
  /// convolution's (unpadded) output shape B x K x OH x OW — the output
  /// transform reads it with a plane-strided 16-lane gather per output pixel,
  /// skipping the >= K padding lanes of the blocked layout. Applied after
  /// bias, before ReLU (see tensor/post_ops.h for the bit-exactness argument).
  const float* sum_nchw = nullptr;
  /// See InputTransformContext::hand_codelets.
  bool hand_codelets = false;
  /// Element type of the blocked output. kU8 appends the requant stage to the
  /// epilogue — q = saturate_u8(round_ne(requant_scale * v) + 128) — AFTER
  /// bias, sum and ReLU, i.e. the epilogue order is bias -> sum -> relu ->
  /// requant (DESIGN.md decision 13). The FP32 store path is untouched.
  DType out_dtype = DType::kF32;
  float requant_scale = 1.0f;
  /// u8 residual for the fused "+sum" epilogue (serving hand-off), or
  /// nullptr. Same NCHW walk as sum_nchw; bytes de-quantize on the fly as
  /// (q - 128) * sum_u8_dequant. At most one of sum_nchw / sum_u8_nchw.
  const std::uint8_t* sum_u8_nchw = nullptr;
  float sum_u8_dequant = 1.0f;
};

/// `out_blocked` points at ctx.out_dtype elements (FP32 or u8 hand-off bytes).
void run_output_transform(const OutputTransformContext& ctx, const std::int32_t* z,
                          const WinogradScales& scales, void* out_blocked,
                          ThreadPool* pool = nullptr);

inline void run_output_transform(const OutputTransformContext& ctx, const std::int32_t* z,
                                 const WinogradScales& scales, std::span<float> out_blocked,
                                 ThreadPool* pool = nullptr) {
  run_output_transform(ctx, z, scales, static_cast<void*>(out_blocked.data()), pool);
}

/// Block-level body shared by the staged and fused drivers: de-quantizes one
/// tile's T x 64 INT32 block (`z_tile`, contiguous position-major as produced
/// by the GEMM scatter for both the staged Z tensor and the fused Z panel),
/// applies Y = A^T Z A, adds bias/ReLU and stores the valid m x m region of
/// global tile `tile`, output-channel block `kb` (64 channels). Identical
/// float operation sequence in both drivers => bit-identical outputs.
void output_transform_tile(const OutputTransformContext& ctx, const std::int32_t* z_tile,
                           std::size_t tile, std::size_t kb, const WinogradScales& scales,
                           OutputTransformScratch& s, void* out_blocked);

}  // namespace lowino

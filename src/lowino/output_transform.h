// Fused de-quantization + output transform (Section 4.2.3).
//
// The GEMM already scattered each tile's T x 64 INT32 block consecutively, so
// this stage reads purely sequential memory:
//   1. de-quantize the T x 16 lanes with the per-(t, k) table (Eq. 6),
//   2. apply Y = A^T . Z . A with the codelet plan,
//   3. add bias (and optionally ReLU) and store the valid m x m region into
//      the blocked output image.
#pragma once

#include <cstdint>
#include <span>

#include "lowino/engine_config.h"
#include "lowino/scales.h"
#include "tensor/conv_desc.h"
#include "tensor/layout.h"
#include "winograd/codelet_plan.h"

namespace lowino {

class ThreadPool;

struct OutputTransformContext {
  const ConvDesc* desc = nullptr;
  const WinogradGeometry* geo = nullptr;
  const CodeletPlan* at_plan = nullptr;  ///< plan for A^T (m x alpha)
  TransformedOutputLayout z_layout;
  BlockedActLayout out_layout;
  const float* bias = nullptr;  ///< [K64], may be null
  bool relu = false;
  /// See InputTransformContext::hand_codelets.
  bool hand_codelets = false;
};

void run_output_transform(const OutputTransformContext& ctx, const std::int32_t* z,
                          const WinogradScales& scales, std::span<float> out_blocked,
                          ThreadPool* pool = nullptr);

}  // namespace lowino

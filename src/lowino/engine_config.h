// Configuration of the LoWino convolution engine.
#pragma once

#include <cctype>
#include <cstddef>
#include <cstring>

#include "gemm/int8_gemm.h"

namespace lowino {

/// Granularity of the Winograd-domain input quantization scales.
enum class ScaleGranularity {
  kPerTensor,    ///< one scale for the whole transformed-input tensor
  kPerPosition,  ///< one scale per tile position t in [0, T) — the default.
};

/// How the three pipeline stages are executed (Section 4.3 vs the fused
/// streaming alternative).
enum class ExecutionMode {
  /// Three fork-join regions with the full transformed tensors V and Z
  /// materialized in between (the paper's staged pipeline). Required for
  /// per-stage time breakdowns; also the differential-testing oracle.
  kStaged,
  /// One fork-join region: each worker transforms, multiplies and
  /// output-transforms its n-block slice with L2-resident per-thread panels.
  /// Bit-identical results; workspace independent of the total tile count.
  kFused,
  /// Staged for small layers (intermediates fit in cache anyway), fused once
  /// the staged V+Z workspace exceeds a cache-derived threshold.
  kAuto,
};

inline const char* execution_mode_name(ExecutionMode mode) {
  switch (mode) {
    case ExecutionMode::kStaged: return "staged";
    case ExecutionMode::kFused: return "fused";
    case ExecutionMode::kAuto: return "auto";
  }
  return "?";
}

/// Parses an execution-mode token ("staged" / "fused" / "auto", matched
/// ASCII case-insensitively so env knobs like LOWINO_EXECUTION_MODE=FUSED
/// behave predictably); returns false on anything else and leaves `mode`
/// untouched. Used by the wisdom store's text format and the env override.
inline bool parse_execution_mode(const char* name, ExecutionMode& mode) {
  const auto matches = [](const char* token, const char* lower) {
    for (; *token != '\0' && *lower != '\0'; ++token, ++lower) {
      if (std::tolower(static_cast<unsigned char>(*token)) != *lower) return false;
    }
    return *token == '\0' && *lower == '\0';
  };
  if (matches(name, "staged")) {
    mode = ExecutionMode::kStaged;
  } else if (matches(name, "fused")) {
    mode = ExecutionMode::kFused;
  } else if (matches(name, "auto")) {
    mode = ExecutionMode::kAuto;
  } else {
    return false;
  }
  return true;
}

/// LoWino engine configuration. The paper's headline configurations are
/// m = 2 (F(2x2,3x3)) and m = 4 (F(4x4,3x3)); the generic transform path
/// supports any m with m + r - 1 <= 10.
struct LoWinoConfig {
  std::size_t m = 4;  ///< output tile size of F(m x m, r x r)

  /// Winograd-domain input scale granularity. Per-position is exact w.r.t.
  /// Eq. 3 (de-quantization precedes the output transform) and markedly more
  /// accurate because each tile position has a different value distribution.
  ScaleGranularity input_scales = ScaleGranularity::kPerPosition;

  /// Per-output-channel filter scales (computed exactly offline). Composes
  /// with per-position scales into the (t, k) de-quantization table.
  bool per_channel_filter_scales = true;

  /// GEMM blocking; tune via src/tuning or keep defaults.
  Int8GemmBlocking blocking;

  /// Hand-scheduled AVX-512 transform codelets for the canonical
  /// F(2x2,3x3)/F(4x4,3x3) matrices (Section 4.2.4). Disable to force the
  /// generic codelet-plan interpreter (ablation A1f).
  bool use_hand_codelets = true;

  /// Fused post-op for the NN runtime: max(0, y + bias).
  bool fuse_relu = false;

  /// Collect per-stage wall-clock times during execute() (Figure 10).
  /// Per-stage times only exist in the staged pipeline, so this forces
  /// ExecutionMode::kStaged regardless of `execution_mode`.
  bool collect_stage_times = false;

  /// Staged pipeline vs fused streaming execution (see ExecutionMode).
  ExecutionMode execution_mode = ExecutionMode::kAuto;

  /// kAuto switches to the fused path when the staged V+Z workspace exceeds
  /// this many bytes per thread. 0 = derive from the L2 cache size (the point
  /// where the staged intermediates stop being cache-resident and every stage
  /// boundary becomes DRAM traffic).
  std::size_t fused_threshold_bytes = 0;
};

/// Per-stage execution time of the last run, seconds (Figure 10).
struct StageTimes {
  double input_transform = 0.0;
  double gemm = 0.0;
  double output_transform = 0.0;
  double total() const { return input_transform + gemm + output_transform; }
};

}  // namespace lowino

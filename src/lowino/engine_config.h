// Configuration of the LoWino convolution engine.
#pragma once

#include <cstddef>

#include "gemm/int8_gemm.h"

namespace lowino {

/// Granularity of the Winograd-domain input quantization scales.
enum class ScaleGranularity {
  kPerTensor,    ///< one scale for the whole transformed-input tensor
  kPerPosition,  ///< one scale per tile position t in [0, T) — the default.
};

/// LoWino engine configuration. The paper's headline configurations are
/// m = 2 (F(2x2,3x3)) and m = 4 (F(4x4,3x3)); the generic transform path
/// supports any m with m + r - 1 <= 10.
struct LoWinoConfig {
  std::size_t m = 4;  ///< output tile size of F(m x m, r x r)

  /// Winograd-domain input scale granularity. Per-position is exact w.r.t.
  /// Eq. 3 (de-quantization precedes the output transform) and markedly more
  /// accurate because each tile position has a different value distribution.
  ScaleGranularity input_scales = ScaleGranularity::kPerPosition;

  /// Per-output-channel filter scales (computed exactly offline). Composes
  /// with per-position scales into the (t, k) de-quantization table.
  bool per_channel_filter_scales = true;

  /// GEMM blocking; tune via src/tuning or keep defaults.
  Int8GemmBlocking blocking;

  /// Hand-scheduled AVX-512 transform codelets for the canonical
  /// F(2x2,3x3)/F(4x4,3x3) matrices (Section 4.2.4). Disable to force the
  /// generic codelet-plan interpreter (ablation A1f).
  bool use_hand_codelets = true;

  /// Fused post-op for the NN runtime: max(0, y + bias).
  bool fuse_relu = false;

  /// Collect per-stage wall-clock times during execute() (Figure 10).
  bool collect_stage_times = false;
};

/// Per-stage execution time of the last run, seconds (Figure 10).
struct StageTimes {
  double input_transform = 0.0;
  double gemm = 0.0;
  double output_transform = 0.0;
  double total() const { return input_transform + gemm + output_transform; }
};

}  // namespace lowino

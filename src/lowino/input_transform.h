// Fused input transform + Winograd-domain quantization (Sections 4.2.1, 3).
//
// For every tile and 64-channel block:
//   1. gather the alpha x alpha x 64 FP32 tile from the blocked input
//      (zero-filling the padding border),
//   2. apply B^T . d . B with the CSE codelet plan, 16 lanes at a time,
//   3. quantize each of the T = alpha^2 positions with its Winograd-domain
//      scale and add the +128 compensation shift,
//   4. scatter complete 64-byte lines into the transformed-input layout with
//      non-temporal stores.
#pragma once

#include <cstdint>
#include <span>

#include "common/aligned_buffer.h"
#include "lowino/scales.h"
#include "tensor/conv_desc.h"
#include "tensor/dtype.h"
#include "tensor/layout.h"
#include "winograd/codelet_plan.h"

namespace lowino {

class ThreadPool;

/// Per-thread transform scratch: FP32 tile buffers and the uint8 staging
/// tile. Reused across execute() calls (thread-local in the staged driver,
/// arena-owned in the fused one) so steady-state runs are allocation-free.
struct InputTransformScratch {
  AlignedBuffer<float> d;               ///< alpha x alpha x 16 gathered input
  AlignedBuffer<float> w;               ///< column-pass intermediate
  AlignedBuffer<float> v;               ///< fully transformed tile
  AlignedBuffer<std::uint8_t> staging;  ///< T x 64 quantized tile

  InputTransformScratch() = default;
  explicit InputTransformScratch(std::size_t t_elems) { ensure(t_elems); }

  void ensure(std::size_t t_elems) {
    d.ensure(t_elems * 16);
    w.ensure(t_elems * 16);
    v.ensure(t_elems * 16);
    staging.ensure(t_elems * kChanBlock);
  }
};

struct InputTransformContext {
  const ConvDesc* desc = nullptr;
  const WinogradGeometry* geo = nullptr;
  const CodeletPlan* bt_plan = nullptr;  ///< plan for B^T (alpha x alpha)
  BlockedActLayout in_layout;
  TransformedInputLayout v_layout;
  bool nt_store = true;
  /// Enable the hand-scheduled AVX-512 codelets. Only valid when bt_plan was
  /// built from the *canonical* F(2,3)/F(4,3) matrices — the codelets
  /// hard-code those coefficients (generated matrices differ in row signs).
  bool hand_codelets = false;
  /// Element type of the blocked input. kU8 means the serving u8 hand-off:
  /// the gather de-quantizes bytes on the fly as (q - 128) * in_dequant into
  /// the FP32 tile (the zero-filled halo is unchanged — 128 de-quantizes to
  /// exactly 0), and everything downstream is identical to the FP32 path.
  DType in_dtype = DType::kF32;
  float in_dequant = 1.0f;  ///< inv_scale of the u8 input hand-off
};

/// Transforms + quantizes the whole blocked input into `v`. `in_blocked`
/// points at ctx.in_dtype elements (FP32 floats or u8 hand-off bytes).
void run_input_transform(const InputTransformContext& ctx, const void* in_blocked,
                         const WinogradScales& scales, std::uint8_t* v,
                         ThreadPool* pool = nullptr);

inline void run_input_transform(const InputTransformContext& ctx,
                                std::span<const float> in_blocked,
                                const WinogradScales& scales, std::uint8_t* v,
                                ThreadPool* pool = nullptr) {
  run_input_transform(ctx, static_cast<const void*>(in_blocked.data()), scales, v, pool);
}

/// Block-level body shared by the staged and fused drivers: transforms one
/// (tile, 64-channel-block) pair and quantizes it into `s.staging`
/// (T x 64 bytes, position-major). `scale_of_t` holds the resolved
/// per-position input scales (length T). The caller scatters the staging tile
/// into its destination layout; the computation is identical either way, so
/// the two drivers produce bit-identical V bytes.
void transform_quantize_tile(const InputTransformContext& ctx, const void* in_blocked,
                             std::size_t tile, std::size_t chan_block,
                             const float* scale_of_t, InputTransformScratch& s);

/// Transforms one (tile, 64-channel-block) pair to FP32 Winograd-domain
/// values without quantization: out[t*64 + g*16 + lane]. Used by calibration
/// and by tests as the reference for the quantized path.
void transform_tile_fp32(const InputTransformContext& ctx, std::span<const float> in_blocked,
                         std::size_t tile, std::size_t chan_block, float* out);

/// Calibration sweep: transforms every tile of `in_blocked` and feeds the
/// FP32 Winograd-domain values into the calibrator (Eq. 7's sample pass).
/// `tile_stride` subsamples tiles to bound calibration cost.
void collect_calibration(const InputTransformContext& ctx, std::span<const float> in_blocked,
                         WinogradCalibrator& calibrator, std::size_t tile_stride = 1);

}  // namespace lowino

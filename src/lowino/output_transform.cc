#include "lowino/output_transform.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/aligned_buffer.h"
#include "lowino/transform_kernels.h"
#include "parallel/thread_pool.h"
#include "profile/profiler.h"

namespace lowino {

void output_transform_tile(const OutputTransformContext& ctx, const std::int32_t* z_tile,
                           std::size_t tile, std::size_t kb, const WinogradScales& scales,
                           OutputTransformScratch& s, void* out_blocked) {
  const ConvDesc& desc = *ctx.desc;
  const WinogradGeometry& geo = *ctx.geo;
  const std::size_t alpha = geo.alpha;
  const std::size_t m = geo.m;
  const std::size_t t_elems = geo.t_elems;
  const std::vector<float>& dq = scales.dequant_table();
  const std::size_t k_padded = scales.k_padded();

  const std::size_t b = tile / geo.tiles_per_image;
  const std::size_t rem = tile % geo.tiles_per_image;
  const std::size_t th = rem / geo.tiles_w;
  const std::size_t tw = rem % geo.tiles_w;
  const std::size_t oh0 = th * m;
  const std::size_t ow0 = tw * m;
  const std::size_t valid_h = std::min(m, desc.out_height() - oh0);
  const std::size_t valid_w = std::min(m, desc.out_width() - ow0);

  for (std::size_t g = 0; g < kPhi; ++g) {
    const std::size_t k_base = kb * kChanBlock + g * 16;
    // 1. De-quantize the T x 16 lanes (reads are fully consecutive).
    for (std::size_t t = 0; t < t_elems; ++t) {
      dequant16(z_tile + t * kChanBlock + g * 16, dq.data() + t * k_padded + k_base,
                s.zf.data() + t * 16);
    }
    // 2. Y = A^T Z A: column pass (alpha -> m rows), then row pass.
    const std::size_t m_codelet = ctx.hand_codelets ? m : 0;
    for (std::size_t j = 0; j < alpha; ++j) {
      if (!apply_at_16(m_codelet, geo.r, s.zf.data() + j * 16, alpha * 16,
                       s.wbuf.data() + j * 16, alpha * 16)) {
        apply_plan_16(*ctx.at_plan, s.zf.data() + j * 16, alpha * 16,
                      s.wbuf.data() + j * 16, alpha * 16);
      }
    }
    for (std::size_t i = 0; i < m; ++i) {
      if (!apply_at_16(m_codelet, geo.r, s.wbuf.data() + i * alpha * 16, 16,
                       s.ybuf.data() + i * m * 16, 16)) {
        apply_plan_16(*ctx.at_plan, s.wbuf.data() + i * alpha * 16, 16,
                      s.ybuf.data() + i * m * 16, 16);
      }
    }
    // 3. Bias / +sum / ReLU epilogue + store the valid region.
    const float* bias16 = ctx.bias != nullptr ? ctx.bias + k_base : nullptr;
    // Lanes >= K are blocked-layout channel padding: the NCHW residual has no
    // such lanes, so they take the sum-free path (their values never reach the
    // unpacked output anyway).
    const std::size_t out_k = desc.out_channels;
    const bool has_sum = ctx.sum_nchw != nullptr || ctx.sum_u8_nchw != nullptr;
    const std::size_t sum_lanes =
        has_sum && out_k > k_base ? std::min<std::size_t>(16, out_k - k_base) : 0;
    const std::size_t plane = desc.out_height() * desc.out_width();
    const float* res_group = ctx.sum_nchw != nullptr && sum_lanes > 0
                                 ? ctx.sum_nchw + (b * out_k + k_base) * plane
                                 : nullptr;
    const std::uint8_t* res8_group = ctx.sum_u8_nchw != nullptr && sum_lanes > 0
                                         ? ctx.sum_u8_nchw + (b * out_k + k_base) * plane
                                         : nullptr;

    if (ctx.out_dtype == DType::kU8) {
      // Requant epilogue: bias -> sum -> relu in FP32 registers, then the
      // same quantize16_u8 kernel as the input transform stores the bytes.
      // Channel-padding lanes (>= out_k) are requantized too — they never
      // reach the unpacked NCHW output.
      std::uint8_t* out8 = static_cast<std::uint8_t*>(out_blocked);
      alignas(64) float vbuf[16];
      for (std::size_t i = 0; i < valid_h; ++i) {
        for (std::size_t j = 0; j < valid_w; ++j) {
          const float* y = s.ybuf.data() + (i * m + j) * 16;
          std::uint8_t* dst =
              out8 + ctx.out_layout.offset(b, kb, oh0 + i, ow0 + j) + g * 16;
          const std::size_t pix = (oh0 + i) * desc.out_width() + (ow0 + j);
          for (std::size_t l = 0; l < 16; ++l) {
            float v = bias16 != nullptr ? y[l] + bias16[l] : y[l];
            if (l < sum_lanes) {
              v += res_group != nullptr
                       ? res_group[pix + l * plane]
                       : static_cast<float>(
                             static_cast<std::int32_t>(res8_group[pix + l * plane]) - 128) *
                             ctx.sum_u8_dequant;
            }
            vbuf[l] = ctx.relu ? std::max(0.0f, v) : v;
          }
          quantize16_u8(vbuf, ctx.requant_scale, dst);
        }
      }
      continue;
    }

    float* outf = static_cast<float*>(out_blocked);
    for (std::size_t i = 0; i < valid_h; ++i) {
      for (std::size_t j = 0; j < valid_w; ++j) {
        const float* y = s.ybuf.data() + (i * m + j) * 16;
        float* dst = outf + ctx.out_layout.offset(b, kb, oh0 + i, ow0 + j) + g * 16;
        if (sum_lanes > 0) {
          // Plane-strided residual gather: lane l of this pixel lives at
          // channel k_base + l of the NCHW residual image.
          const std::size_t pix = (oh0 + i) * desc.out_width() + (ow0 + j);
          const float* res = res_group != nullptr ? res_group + pix : nullptr;
          const std::uint8_t* res8 = res8_group != nullptr ? res8_group + pix : nullptr;
          for (std::size_t l = 0; l < sum_lanes; ++l) {
            float v = bias16 != nullptr ? y[l] + bias16[l] : y[l];
            v += res != nullptr
                     ? res[l * plane]
                     : static_cast<float>(static_cast<std::int32_t>(res8[l * plane]) - 128) *
                           ctx.sum_u8_dequant;
            dst[l] = ctx.relu ? std::max(0.0f, v) : v;
          }
          for (std::size_t l = sum_lanes; l < 16; ++l) {
            const float v = bias16 != nullptr ? y[l] + bias16[l] : y[l];
            dst[l] = ctx.relu ? std::max(0.0f, v) : v;
          }
        } else if (bias16 != nullptr && ctx.relu) {
          for (int l = 0; l < 16; ++l) dst[l] = std::max(0.0f, y[l] + bias16[l]);
        } else if (bias16 != nullptr) {
          for (int l = 0; l < 16; ++l) dst[l] = y[l] + bias16[l];
        } else if (ctx.relu) {
          for (int l = 0; l < 16; ++l) dst[l] = std::max(0.0f, y[l]);
        } else {
          std::memcpy(dst, y, 16 * sizeof(float));
        }
      }
    }
  }
}

void run_output_transform(const OutputTransformContext& ctx, const std::int32_t* z,
                          const WinogradScales& scales, void* out_blocked,
                          ThreadPool* pool) {
  const WinogradGeometry& geo = *ctx.geo;
  const std::size_t k_blocks64 = ctx.out_layout.chan_blocks;
  const std::size_t jobs = geo.total_tiles * k_blocks64;

  auto worker = [&](std::size_t tid, std::size_t nw) {
    ProfileSpan span(ProfileStage::kOutputTransform);
    // Persistent per-thread scratch (see run_input_transform).
    thread_local OutputTransformScratch s;
    s.ensure(geo.t_elems, geo.m, geo.alpha);
    const Range range = static_partition(jobs, nw, tid);
    for (std::size_t job = range.begin; job < range.end; ++job) {
      const std::size_t tile = job / k_blocks64;
      const std::size_t kb = job % k_blocks64;
      const std::int32_t* z_tile = z + ctx.z_layout.offset(tile, 0, kb * kChanBlock);
      output_transform_tile(ctx, z_tile, tile, kb, scales, s, out_blocked);
    }
  };

  if (pool != nullptr) {
    pool->run(worker);
  } else {
    worker(0, 1);
  }
}

}  // namespace lowino

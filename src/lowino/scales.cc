#include "lowino/scales.h"

#include "quant/calibration.h"

namespace lowino {

WinogradScales::WinogradScales(std::size_t t_elems, bool per_position, std::size_t k_padded,
                               bool per_channel_filters)
    : t_elems_(t_elems),
      k_padded_(k_padded),
      per_position_(per_position),
      per_channel_filters_(per_channel_filters) {
  input_.assign(per_position_ ? t_elems_ : 1, QuantParams{});
  // Filter scales are always per position: filters are known offline, so
  // coarsening them buys nothing and clips transformed values at positions
  // whose abs-max exceeds the shared scale. Only the input granularity is a
  // calibration-cost trade-off; per_channel_filters controls the k dimension.
  filter_.assign(t_elems_ * (per_channel_filters_ ? k_padded_ : 1), QuantParams{});
}

void WinogradScales::build_dequant_table() {
  dequant_.assign(t_elems_ * k_padded_, 0.0f);
  for (std::size_t t = 0; t < t_elems_; ++t) {
    const float inv_in = 1.0f / input_scale(t);
    for (std::size_t k = 0; k < k_padded_; ++k) {
      dequant_[t * k_padded_ + k] = inv_in / filter_scale(t, k);
    }
  }
}

WinogradCalibrator::WinogradCalibrator(std::size_t t_elems, bool per_position,
                                       std::size_t bins)
    : per_position_(per_position) {
  histograms_.assign(per_position_ ? t_elems : 1, Histogram(bins));
}

void WinogradCalibrator::collect(std::size_t t, std::span<const float> values) {
  histograms_[per_position_ ? t : 0].collect(values);
}

void WinogradCalibrator::finalize_into(WinogradScales& scales) const {
  for (std::size_t t = 0; t < scales.t_elems(); ++t) {
    const Histogram& h = histograms_[per_position_ ? t : 0];
    scales.set_input_scale(t, calibrate_params(h));
  }
}

bool WinogradCalibrator::empty() const {
  for (const Histogram& h : histograms_) {
    if (!h.empty()) return false;
  }
  return true;
}

}  // namespace lowino

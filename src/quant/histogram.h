// Absolute-value histogram used by KL-divergence calibration (Eq. 7).
//
// Calibration runs the FP32 network on ~500 sample inputs and records the
// distribution of every tensor to be quantized; the histogram is the compact
// sufficient statistic for the threshold search.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace lowino {

class Histogram {
 public:
  static constexpr std::size_t kDefaultBins = 2048;

  explicit Histogram(std::size_t bins = kDefaultBins) : counts_(bins, 0) {}

  /// Adds |values| to the histogram. The first batch sets the range to
  /// 1.25 * max|values|; when later batches exceed it, the histogram doubles
  /// its bin width (merging bins pairwise) until the new maximum fits, so the
  /// result is independent of how the data was batched. An all-zero first
  /// batch defers range selection to the next batch.
  void collect(std::span<const float> values);

  std::size_t bins() const { return counts_.size(); }
  std::uint64_t count(std::size_t i) const { return counts_[i]; }
  std::uint64_t total() const { return total_; }
  float bin_width() const { return bin_width_; }
  float max_abs_seen() const { return max_abs_seen_; }
  bool empty() const { return total_ == 0; }

  /// Upper edge of bin i (values in bin i satisfy |v| < edge(i)).
  float edge(std::size_t i) const { return bin_width_ * static_cast<float>(i + 1); }

  const std::vector<std::uint64_t>& counts() const { return counts_; }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  float bin_width_ = 0.0f;
  float max_abs_seen_ = 0.0f;
};

}  // namespace lowino

// KL-divergence threshold calibration (Eq. 7 of the paper; Migacz's TensorRT
// procedure): choose the saturation threshold tau minimizing
//   D_KL( P(X) || P(Q_tau(X)) )
// over candidate thresholds, where P is the activation distribution.
#pragma once

#include "quant/histogram.h"
#include "quant/quantize.h"

namespace lowino {

struct CalibrationResult {
  float tau = 0.0f;       ///< chosen saturation threshold
  double kl = 0.0;        ///< KL divergence at the chosen threshold
  std::size_t bin = 0;    ///< histogram bin index of the threshold
};

/// Runs the KL sweep over a collected histogram. `quant_levels` is the number
/// of positive quantization levels (127 for symmetric INT8). Returns the
/// max-abs threshold if the histogram is empty or degenerate.
///
/// `min_coverage` floors the threshold at the quantile keeping that fraction
/// of the observed mass. Raw KL minimization over-clips when the calibration
/// set is small (sparse histograms make the divergence estimate noisy); the
/// coverage floor keeps the sweep's outlier-clipping behaviour while bounding
/// the damage. Set to 0 for the unmodified TensorRT-style sweep.
CalibrationResult calibrate_kl(const Histogram& hist, std::size_t quant_levels = 128,
                               double min_coverage = 0.999);

/// Convenience: KL-calibrated QuantParams for a histogram.
QuantParams calibrate_params(const Histogram& hist);

/// Discrete KL divergence between two (unnormalized) distributions; zero
/// q-mass where p has mass is smoothed. Exposed for tests.
double kl_divergence(std::span<const double> p, std::span<const double> q);

}  // namespace lowino

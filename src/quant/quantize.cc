#include "quant/quantize.h"

#include <cassert>
#include <cmath>

#include "common/saturate.h"

namespace lowino {

QuantParams QuantParams::from_threshold(float tau, int bits) {
  // Degenerate all-zero tensors calibrate to tau == 0; scale 1 keeps them
  // exactly representable (everything quantizes to 0).
  const float qmax = static_cast<float>((1 << (bits - 1)) - 1);
  float scale = tau > 0.0f ? qmax / tau : 1.0f;
  // Sub-normal tau (e.g. a tensor whose only non-zero is ~1e-40) overflows
  // qmax/tau to +inf, whose inverse is 0 and whose products are NaN. Treat it
  // like the all-zero case: scale 1 quantizes the (negligible) values to 0.
  if (!std::isfinite(scale)) scale = 1.0f;
  return from_scale(scale);
}

QuantParams QuantParams::from_scale(float scale) {
  QuantParams p;
  p.scale = scale;
  p.inv_scale = 1.0f / scale;
  return p;
}

float abs_max(std::span<const float> values) {
  float m = 0.0f;
  for (float v : values) m = std::max(m, std::abs(v));
  return m;
}

void quantize_i8(std::span<const float> src, float scale, std::span<std::int8_t> dst) {
  assert(dst.size() >= src.size());
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = saturate_cast_i8(src[i] * scale);
}

void quantize_u8_shift128(std::span<const float> src, float scale,
                          std::span<std::uint8_t> dst) {
  assert(dst.size() >= src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    // Round first, shift in the integer domain: adding 128.0f before rounding
    // could perturb the FP32 tie cases and diverge from the vector kernels.
    const std::int32_t q = round_nearest_even(src[i] * scale) + 128;
    dst[i] = static_cast<std::uint8_t>(std::clamp(q, 0, 255));
  }
}

void dequantize_i32(std::span<const std::int32_t> src, float inv_scale, std::span<float> dst) {
  assert(dst.size() >= src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = static_cast<float>(src[i]) * inv_scale;
  }
}

void dequantize_u8_shift128(std::span<const std::uint8_t> src, float inv_scale,
                            std::span<float> dst) {
  assert(dst.size() >= src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = static_cast<float>(static_cast<std::int32_t>(src[i]) - 128) * inv_scale;
  }
}

QuantError quantization_error(std::span<const float> reference, std::span<const float> actual) {
  assert(reference.size() == actual.size());
  QuantError e;
  double signal = 0.0, noise = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double d = static_cast<double>(reference[i]) - static_cast<double>(actual[i]);
    noise += d * d;
    signal += static_cast<double>(reference[i]) * static_cast<double>(reference[i]);
    e.max_abs = std::max(e.max_abs, std::abs(d));
  }
  const double n = reference.empty() ? 1.0 : static_cast<double>(reference.size());
  e.mse = noise / n;
  e.signal_to_noise_db =
      noise > 0.0 ? 10.0 * std::log10(signal / noise) : 300.0;  // 300 dB ~ exact
  return e;
}

}  // namespace lowino

#include "quant/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace lowino {

void Histogram::collect(std::span<const float> values) {
  float batch_max = 0.0f;
  for (float v : values) batch_max = std::max(batch_max, std::abs(v));
  if (bin_width_ == 0.0f) {
    if (batch_max == 0.0f) return;  // defer range selection until real data arrives
    bin_width_ = 1.25f * batch_max / static_cast<float>(counts_.size());
    // A sub-normal batch_max (u8-ReLU layers can emit near-degenerate
    // tensors) underflows the division to a sub-normal width whose inverse
    // below is +inf — and size_t(inf) is UB. Floor at the smallest normal
    // float; everything still lands in bin 0, which is what KL wants here.
    bin_width_ = std::max(bin_width_, std::numeric_limits<float>::min());
  }
  // Grow the range by doubling the bin width (merging bins pairwise) until
  // the batch maximum fits. Keeps the histogram batching-order independent.
  const std::size_t n = counts_.size();
  while (batch_max >= bin_width_ * static_cast<float>(n)) {
    for (std::size_t j = 0; j < n / 2; ++j) {
      counts_[j] = counts_[2 * j] + counts_[2 * j + 1];
    }
    std::fill(counts_.begin() + static_cast<std::ptrdiff_t>(n / 2), counts_.end(),
              std::uint64_t{0});
    bin_width_ *= 2.0f;
  }
  const float inv_w = 1.0f / bin_width_;
  const std::size_t last = n - 1;
  for (float v : values) {
    const float a = std::abs(v);
    max_abs_seen_ = std::max(max_abs_seen_, a);
    const std::size_t bin = std::min(last, static_cast<std::size_t>(a * inv_w));
    ++counts_[bin];
    ++total_;
  }
}

}  // namespace lowino

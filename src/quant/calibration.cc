#include "quant/calibration.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace lowino {

double kl_divergence(std::span<const double> p, std::span<const double> q) {
  double p_sum = 0.0, q_sum = 0.0;
  for (double v : p) p_sum += v;
  for (double v : q) q_sum += v;
  if (p_sum <= 0.0 || q_sum <= 0.0) return 0.0;
  // Smoothing: a vanishing probability floor avoids log(0) where q is empty
  // but p is not (standard practice in the TensorRT calibration procedure).
  constexpr double kEps = 1e-12;
  double kl = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double pi = p[i] / p_sum;
    if (pi <= 0.0) continue;
    const double qi = std::max(q[i] / q_sum, kEps);
    kl += pi * std::log(pi / qi);
  }
  return kl;
}

CalibrationResult calibrate_kl(const Histogram& hist, std::size_t quant_levels,
                               double min_coverage) {
  CalibrationResult result;
  if (hist.empty() || hist.bin_width() == 0.0f) {
    result.tau = hist.max_abs_seen();
    return result;
  }
  const auto& counts = hist.counts();
  const std::size_t n_bins = counts.size();
  if (n_bins <= quant_levels) {
    result.tau = hist.edge(n_bins - 1);
    result.bin = n_bins - 1;
    return result;
  }

  // Coverage floor: smallest bin count keeping min_coverage of the mass.
  std::size_t i_floor = quant_levels;
  if (min_coverage > 0.0) {
    const double want = min_coverage * static_cast<double>(hist.total());
    double cum = 0.0;
    for (std::size_t j = 0; j < n_bins; ++j) {
      cum += static_cast<double>(counts[j]);
      if (cum >= want) {
        i_floor = std::max(i_floor, j + 1);
        break;
      }
    }
  }

  double best_kl = std::numeric_limits<double>::infinity();
  std::size_t best_i = n_bins;

  std::vector<double> p, q, expanded;
  for (std::size_t i = i_floor; i <= n_bins; ++i) {
    // Reference distribution: bins [0, i), with all clipped outlier mass
    // folded into the last kept bin.
    p.assign(counts.begin(), counts.begin() + static_cast<std::ptrdiff_t>(i));
    double outliers = 0.0;
    for (std::size_t j = i; j < n_bins; ++j) outliers += static_cast<double>(counts[j]);
    p[i - 1] += outliers;

    // Candidate distribution: quantize the i bins into quant_levels buckets,
    // then expand each bucket's mass uniformly over its originally non-empty
    // bins (empty bins stay empty so the support matches).
    q.assign(i, 0.0);
    const double bins_per_level = static_cast<double>(i) / static_cast<double>(quant_levels);
    for (std::size_t level = 0; level < quant_levels; ++level) {
      const std::size_t start = static_cast<std::size_t>(level * bins_per_level);
      const std::size_t stop =
          std::min(i, static_cast<std::size_t>((level + 1) * bins_per_level));
      double mass = 0.0;
      std::size_t nonzero = 0;
      for (std::size_t j = start; j < stop; ++j) {
        mass += static_cast<double>(counts[j]);
        if (counts[j] != 0) ++nonzero;
      }
      if (nonzero == 0) continue;
      const double share = mass / static_cast<double>(nonzero);
      for (std::size_t j = start; j < stop; ++j) {
        if (counts[j] != 0) q[j] = share;
      }
    }

    const double kl = kl_divergence(p, q);
    if (kl < best_kl) {
      best_kl = kl;
      best_i = i;
    }
  }

  result.bin = best_i - 1;
  result.tau = hist.edge(best_i - 1);
  result.kl = best_kl;
  return result;
}

QuantParams calibrate_params(const Histogram& hist) {
  return QuantParams::from_threshold(calibrate_kl(hist).tau);
}

}  // namespace lowino

// Linear quantization with saturation (Eq. 4-6 of the paper).
//
//   Q(x)  = saturate_int8(round(alpha * x)),   alpha = (2^(b-1) - 1) / tau
//   Q'(q) = q / alpha
//
// tau is the calibrated threshold (quant/calibration.h); alpha the scale.
#pragma once

#include <cstdint>
#include <span>

namespace lowino {

/// Quantization parameters for one tensor (or one Winograd tile position).
struct QuantParams {
  float scale = 1.0f;      ///< alpha in Eq. 5
  float inv_scale = 1.0f;  ///< 1 / alpha, used by de-quantization (Eq. 6)

  static QuantParams from_threshold(float tau, int bits = 8);
  static QuantParams from_scale(float scale);
};

/// Largest absolute value in `values` (0 for empty input).
float abs_max(std::span<const float> values);

/// Quantizes FP32 -> INT8 with round-to-nearest-even and saturation.
void quantize_i8(std::span<const float> src, float scale, std::span<std::int8_t> dst);

/// Quantizes FP32 -> UINT8 with the +128 compensation shift of Section 4.2.1
/// (dst = saturate_u8(round(scale * src) + 128)).
void quantize_u8_shift128(std::span<const float> src, float scale,
                          std::span<std::uint8_t> dst);

/// De-quantizes INT32 accumulator values: dst = src * inv_scale.
void dequantize_i32(std::span<const std::int32_t> src, float inv_scale, std::span<float> dst);

/// De-quantizes UINT8 values carrying the +128 zero-point shift (the u8
/// activation hand-off encoding): dst = (src - 128) * inv_scale. Inverse of
/// quantize_u8_shift128 up to the rounding step.
void dequantize_u8_shift128(std::span<const std::uint8_t> src, float inv_scale,
                            std::span<float> dst);

/// Round-trip quantization error measures (testing / Figure 9 utilities).
struct QuantError {
  double mse = 0.0;
  double max_abs = 0.0;
  double signal_to_noise_db = 0.0;
};
QuantError quantization_error(std::span<const float> reference, std::span<const float> actual);

}  // namespace lowino

#include "testing/oracle.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lowino {
namespace testing {

std::vector<double> direct_conv_f64(const ConvDesc& desc, std::span<const float> input,
                                    std::span<const float> weights,
                                    std::span<const float> bias, bool relu) {
  const std::size_t B = desc.batch, C = desc.in_channels, K = desc.out_channels;
  const std::size_t H = desc.height, W = desc.width, r = desc.kernel;
  const std::size_t OH = desc.out_height(), OW = desc.out_width();
  const std::size_t CG = C / desc.groups, KG = K / desc.groups;  // per-group channels
  assert(input.size() >= B * C * H * W);
  assert(weights.size() >= K * CG * r * r);
  std::vector<double> out(B * K * OH * OW, 0.0);
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t k = 0; k < K; ++k) {
      const std::size_t c0 = (k / KG) * CG;  // first input channel of k's group
      for (std::size_t oh = 0; oh < OH; ++oh) {
        for (std::size_t ow = 0; ow < OW; ++ow) {
          double acc = bias.empty() ? 0.0 : static_cast<double>(bias[k]);
          for (std::size_t ci = 0; ci < CG; ++ci) {
            const std::size_t c = c0 + ci;
            for (std::size_t i = 0; i < r; ++i) {
              const std::ptrdiff_t ih =
                  static_cast<std::ptrdiff_t>(oh * desc.stride + i) -
                  static_cast<std::ptrdiff_t>(desc.pad);
              if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(H)) continue;
              for (std::size_t j = 0; j < r; ++j) {
                const std::ptrdiff_t iw =
                    static_cast<std::ptrdiff_t>(ow * desc.stride + j) -
                    static_cast<std::ptrdiff_t>(desc.width_pad());
                if (iw < 0 || iw >= static_cast<std::ptrdiff_t>(W)) continue;
                acc += static_cast<double>(
                           input[((b * C + c) * H + static_cast<std::size_t>(ih)) * W +
                                 static_cast<std::size_t>(iw)]) *
                       static_cast<double>(weights[((k * CG + ci) * r + i) * r + j]);
              }
            }
          }
          if (relu && acc < 0.0) acc = 0.0;
          out[((b * K + k) * OH + oh) * OW + ow] = acc;
        }
      }
    }
  }
  return out;
}

std::vector<std::int64_t> direct_conv_i64(const ConvDesc& desc,
                                          std::span<const std::int8_t> input,
                                          std::span<const std::int8_t> weights) {
  const std::size_t B = desc.batch, C = desc.in_channels, K = desc.out_channels;
  const std::size_t H = desc.height, W = desc.width, r = desc.kernel;
  const std::size_t OH = desc.out_height(), OW = desc.out_width();
  const std::size_t CG = C / desc.groups, KG = K / desc.groups;
  assert(input.size() >= B * C * H * W);
  assert(weights.size() >= K * CG * r * r);
  std::vector<std::int64_t> out(B * K * OH * OW, 0);
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t k = 0; k < K; ++k) {
      const std::size_t c0 = (k / KG) * CG;
      for (std::size_t oh = 0; oh < OH; ++oh) {
        for (std::size_t ow = 0; ow < OW; ++ow) {
          std::int64_t acc = 0;
          for (std::size_t ci = 0; ci < CG; ++ci) {
            const std::size_t c = c0 + ci;
            for (std::size_t i = 0; i < r; ++i) {
              const std::ptrdiff_t ih =
                  static_cast<std::ptrdiff_t>(oh * desc.stride + i) -
                  static_cast<std::ptrdiff_t>(desc.pad);
              if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(H)) continue;
              for (std::size_t j = 0; j < r; ++j) {
                const std::ptrdiff_t iw =
                    static_cast<std::ptrdiff_t>(ow * desc.stride + j) -
                    static_cast<std::ptrdiff_t>(desc.width_pad());
                if (iw < 0 || iw >= static_cast<std::ptrdiff_t>(W)) continue;
                acc += static_cast<std::int64_t>(
                           input[((b * C + c) * H + static_cast<std::size_t>(ih)) * W +
                                 static_cast<std::size_t>(iw)]) *
                       static_cast<std::int64_t>(weights[((k * CG + ci) * r + i) * r + j]);
              }
            }
          }
          out[((b * K + k) * OH + oh) * OW + ow] = acc;
        }
      }
    }
  }
  return out;
}

namespace {

/// Loads one alpha x alpha input tile (image b, channel c, tile th/tw) with
/// zero padding, mirroring the engines' tiling: tile origin in the padded
/// image is (th * m - pad, tw * m - pad).
void load_tile_f64(const ConvDesc& desc, std::span<const float> input, std::size_t b,
                   std::size_t c, std::size_t th, std::size_t tw, std::size_t m,
                   std::size_t alpha, double* tile) {
  const std::size_t H = desc.height, W = desc.width, C = desc.in_channels;
  for (std::size_t i = 0; i < alpha; ++i) {
    const std::ptrdiff_t ih = static_cast<std::ptrdiff_t>(th * m + i) -
                              static_cast<std::ptrdiff_t>(desc.pad);
    for (std::size_t j = 0; j < alpha; ++j) {
      const std::ptrdiff_t iw = static_cast<std::ptrdiff_t>(tw * m + j) -
                                static_cast<std::ptrdiff_t>(desc.pad);
      double v = 0.0;
      if (ih >= 0 && ih < static_cast<std::ptrdiff_t>(H) && iw >= 0 &&
          iw < static_cast<std::ptrdiff_t>(W)) {
        v = static_cast<double>(input[((b * C + c) * H + static_cast<std::size_t>(ih)) * W +
                                      static_cast<std::size_t>(iw)]);
      }
      tile[i * alpha + j] = v;
    }
  }
}

/// out = M * in * M^T with M of shape rows x cols, in of shape cols x cols.
void sandwich_f64(const double* M, std::size_t rows, std::size_t cols, const double* in,
                  double* out) {
  std::vector<double> tmp(rows * cols, 0.0);  // M * in
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p < cols; ++p) s += M[i * cols + p] * in[p * cols + j];
      tmp[i * cols + j] = s;
    }
  }
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < rows; ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p < cols; ++p) s += tmp[i * cols + p] * M[j * cols + p];
      out[i * rows + j] = s;
    }
  }
}

}  // namespace

const TransformMatrices& engine_transform(std::size_t m, std::size_t r) {
  if (m == 2 && r == 3) return canonical_f23();
  if (m == 4 && r == 3) return canonical_f43();
  return winograd_transform(m, r);
}

std::vector<double> transformed_input_absmax(const ConvDesc& desc, std::size_t m,
                                             std::span<const float> input) {
  const WinogradGeometry geo(desc, m);
  const TransformMatrices& tm = engine_transform(m, desc.kernel);
  std::vector<double> result(geo.t_elems, 0.0);
  std::vector<double> tile(geo.t_elems), v(geo.t_elems);
  for (std::size_t b = 0; b < desc.batch; ++b) {
    for (std::size_t c = 0; c < desc.in_channels; ++c) {
      for (std::size_t th = 0; th < geo.tiles_h; ++th) {
        for (std::size_t tw = 0; tw < geo.tiles_w; ++tw) {
          load_tile_f64(desc, input, b, c, th, tw, m, geo.alpha, tile.data());
          sandwich_f64(tm.BT.data(), geo.alpha, geo.alpha, tile.data(), v.data());
          for (std::size_t t = 0; t < geo.t_elems; ++t) {
            result[t] = std::max(result[t], std::abs(v[t]));
          }
        }
      }
    }
  }
  return result;
}

TransformedFilterStats transformed_filter_stats(const ConvDesc& desc, std::size_t m,
                                                std::span<const float> weights) {
  const std::size_t K = desc.out_channels, C = desc.in_channels, r = desc.kernel;
  const TransformMatrices& tm = engine_transform(m, r);
  const std::size_t alpha = tm.alpha, T = alpha * alpha;
  assert(weights.size() >= K * C * r * r);

  TransformedFilterStats stats;
  stats.t_elems = T;
  stats.k = K;
  stats.abs_max.assign(T * K, 0.0);
  stats.abs_sum.assign(T * K, 0.0);

  std::vector<double> g(r * r), tmp(alpha * r), u(T);
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t c = 0; c < C; ++c) {
      for (std::size_t i = 0; i < r * r; ++i) {
        g[i] = static_cast<double>(weights[(k * C + c) * r * r + i]);
      }
      // u = G * g * G^T (G is alpha x r, g is r x r).
      for (std::size_t i = 0; i < alpha; ++i) {
        for (std::size_t j = 0; j < r; ++j) {
          double s = 0.0;
          for (std::size_t p = 0; p < r; ++p) s += tm.g(i, p) * g[p * r + j];
          tmp[i * r + j] = s;
        }
      }
      for (std::size_t i = 0; i < alpha; ++i) {
        for (std::size_t j = 0; j < alpha; ++j) {
          double s = 0.0;
          for (std::size_t p = 0; p < r; ++p) s += tmp[i * r + p] * tm.g(j, p);
          u[i * alpha + j] = s;
        }
      }
      for (std::size_t t = 0; t < T; ++t) {
        const double a = std::abs(u[t]);
        stats.abs_max[t * K + k] = std::max(stats.abs_max[t * K + k], a);
        stats.abs_sum[t * K + k] += a;
      }
    }
  }
  return stats;
}

SpatialFilterStats spatial_filter_stats(const ConvDesc& desc,
                                        std::span<const float> weights) {
  const std::size_t K = desc.out_channels, r = desc.kernel;
  // Grouped filters only span their group's C/groups input channels.
  const std::size_t patch = desc.group_in_channels() * r * r;
  SpatialFilterStats stats;
  stats.k = K;
  stats.abs_max.assign(K, 0.0);
  stats.abs_sum.assign(K, 0.0);
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t i = 0; i < patch; ++i) {
      const double a = std::abs(static_cast<double>(weights[k * patch + i]));
      stats.abs_max[k] = std::max(stats.abs_max[k], a);
      stats.abs_sum[k] += a;
    }
  }
  return stats;
}

double abs_max_f64(std::span<const float> values) {
  double m = 0.0;
  for (const float v : values) m = std::max(m, std::abs(static_cast<double>(v)));
  return m;
}

}  // namespace testing
}  // namespace lowino

#include "testing/rational_conv.h"

#include <cassert>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "testing/oracle.h"
#include "winograd/transform.h"

namespace lowino {
namespace testing {

Rational rational_from_float(float x) {
  if (!std::isfinite(x)) throw std::domain_error("rational_from_float: non-finite input");
  if (x == 0.0f) return Rational(0);
  int exp = 0;
  const double frac = std::frexp(static_cast<double>(x), &exp);  // |frac| in [0.5, 1)
  // frac * 2^24 is an integer for any float (24-bit significand).
  const auto num = static_cast<std::int64_t>(std::ldexp(frac, 24));
  const int e = exp - 24;
  if (e >= 0) {
    if (e > 38) throw std::overflow_error("rational_from_float: exponent too large");
    return Rational(num * (std::int64_t{1} << e), 1);
  }
  if (e < -62) throw std::overflow_error("rational_from_float: exponent too small");
  return Rational(num, std::int64_t{1} << -e);
}

std::vector<Rational> rationalize(std::span<const float> values) {
  std::vector<Rational> out;
  out.reserve(values.size());
  for (const float v : values) out.push_back(rational_from_float(v));
  return out;
}

std::vector<Rational> rational_direct_conv(const ConvDesc& desc,
                                           std::span<const Rational> input,
                                           std::span<const Rational> weights,
                                           std::span<const Rational> bias) {
  const std::size_t B = desc.batch, C = desc.in_channels, K = desc.out_channels;
  const std::size_t H = desc.height, W = desc.width, r = desc.kernel;
  const std::size_t OH = desc.out_height(), OW = desc.out_width();
  assert(input.size() >= B * C * H * W);
  assert(weights.size() >= K * C * r * r);
  std::vector<Rational> out(B * K * OH * OW, Rational(0));
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t k = 0; k < K; ++k) {
      for (std::size_t oh = 0; oh < OH; ++oh) {
        for (std::size_t ow = 0; ow < OW; ++ow) {
          Rational acc = bias.empty() ? Rational(0) : bias[k];
          for (std::size_t c = 0; c < C; ++c) {
            for (std::size_t i = 0; i < r; ++i) {
              const std::ptrdiff_t ih =
                  static_cast<std::ptrdiff_t>(oh * desc.stride + i) -
                  static_cast<std::ptrdiff_t>(desc.pad);
              if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(H)) continue;
              for (std::size_t j = 0; j < r; ++j) {
                const std::ptrdiff_t iw =
                    static_cast<std::ptrdiff_t>(ow * desc.stride + j) -
                    static_cast<std::ptrdiff_t>(desc.width_pad());
                if (iw < 0 || iw >= static_cast<std::ptrdiff_t>(W)) continue;
                acc += input[((b * C + c) * H + static_cast<std::size_t>(ih)) * W +
                             static_cast<std::size_t>(iw)] *
                       weights[((k * C + c) * r + i) * r + j];
              }
            }
          }
          out[((b * K + k) * OH + oh) * OW + ow] = acc;
        }
      }
    }
  }
  return out;
}

namespace {

/// out = M * in * M^T, M rows x cols (rational), in cols x cols.
void sandwich_q(const std::vector<Rational>& M, std::size_t rows, std::size_t cols,
                const std::vector<Rational>& in, std::vector<Rational>& out) {
  std::vector<Rational> tmp(rows * cols, Rational(0));
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      Rational s(0);
      for (std::size_t p = 0; p < cols; ++p) s += M[i * cols + p] * in[p * cols + j];
      tmp[i * cols + j] = s;
    }
  }
  out.assign(rows * rows, Rational(0));
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < rows; ++j) {
      Rational s(0);
      for (std::size_t p = 0; p < cols; ++p) s += tmp[i * cols + p] * M[j * cols + p];
      out[i * rows + j] = s;
    }
  }
}

}  // namespace

std::vector<Rational> rational_winograd_conv(const ConvDesc& desc, std::size_t m,
                                             std::span<const Rational> input,
                                             std::span<const Rational> weights,
                                             std::span<const Rational> bias) {
  if (desc.stride != 1) {
    throw std::invalid_argument("rational_winograd_conv: unit stride only");
  }
  const std::size_t B = desc.batch, C = desc.in_channels, K = desc.out_channels;
  const std::size_t H = desc.height, W = desc.width, r = desc.kernel;
  const std::size_t OH = desc.out_height(), OW = desc.out_width();
  const WinogradGeometry geo(desc, m);
  const TransformMatrices& tm = engine_transform(m, r);
  const std::size_t alpha = geo.alpha, T = geo.t_elems;

  // Pre-transform every filter: U[k][c] = G g G^T.
  std::vector<std::vector<Rational>> u(K * C);
  {
    std::vector<Rational> g(r * r), gt(alpha * r);
    for (std::size_t k = 0; k < K; ++k) {
      for (std::size_t c = 0; c < C; ++c) {
        for (std::size_t i = 0; i < r * r; ++i) g[i] = weights[(k * C + c) * r * r + i];
        for (std::size_t i = 0; i < alpha; ++i) {
          for (std::size_t j = 0; j < r; ++j) {
            Rational s(0);
            for (std::size_t p = 0; p < r; ++p) s += tm.G_q[i * r + p] * g[p * r + j];
            gt[i * r + j] = s;
          }
        }
        auto& uk = u[k * C + c];
        uk.assign(T, Rational(0));
        for (std::size_t i = 0; i < alpha; ++i) {
          for (std::size_t j = 0; j < alpha; ++j) {
            Rational s(0);
            for (std::size_t p = 0; p < r; ++p) s += gt[i * r + p] * tm.G_q[j * r + p];
            uk[i * alpha + j] = s;
          }
        }
      }
    }
  }

  std::vector<Rational> out(B * K * OH * OW, Rational(0));
  std::vector<Rational> tile(T), v(T), acc(T), y;
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t th = 0; th < geo.tiles_h; ++th) {
      for (std::size_t tw = 0; tw < geo.tiles_w; ++tw) {
        // Per-channel transformed tiles for this (b, th, tw).
        std::vector<std::vector<Rational>> v_all(C);
        for (std::size_t c = 0; c < C; ++c) {
          for (std::size_t i = 0; i < alpha; ++i) {
            const std::ptrdiff_t ih = static_cast<std::ptrdiff_t>(th * m + i) -
                                      static_cast<std::ptrdiff_t>(desc.pad);
            for (std::size_t j = 0; j < alpha; ++j) {
              const std::ptrdiff_t iw = static_cast<std::ptrdiff_t>(tw * m + j) -
                                        static_cast<std::ptrdiff_t>(desc.pad);
              Rational val(0);
              if (ih >= 0 && ih < static_cast<std::ptrdiff_t>(H) && iw >= 0 &&
                  iw < static_cast<std::ptrdiff_t>(W)) {
                val = input[((b * C + c) * H + static_cast<std::size_t>(ih)) * W +
                            static_cast<std::size_t>(iw)];
              }
              tile[i * alpha + j] = val;
            }
          }
          sandwich_q(tm.BT_q, alpha, alpha, tile, v);
          v_all[c] = v;
        }
        for (std::size_t k = 0; k < K; ++k) {
          for (std::size_t t = 0; t < T; ++t) acc[t] = Rational(0);
          for (std::size_t c = 0; c < C; ++c) {
            const auto& uk = u[k * C + c];
            const auto& vc = v_all[c];
            for (std::size_t t = 0; t < T; ++t) acc[t] += uk[t] * vc[t];
          }
          sandwich_q(tm.AT_q, m, alpha, acc, y);
          const Rational bk = bias.empty() ? Rational(0) : bias[k];
          for (std::size_t i = 0; i < m && th * m + i < OH; ++i) {
            for (std::size_t j = 0; j < m && tw * m + j < OW; ++j) {
              out[((b * K + k) * OH + th * m + i) * OW + tw * m + j] =
                  y[i * m + j] + bk;
            }
          }
        }
      }
    }
  }
  return out;
}

}  // namespace testing
}  // namespace lowino

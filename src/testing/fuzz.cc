#include "testing/fuzz.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <exception>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "baselines/downscale_wino.h"
#include "baselines/fp32_wino.h"
#include "baselines/upcast_wino.h"
#include "baselines/vendor_wino.h"
#include "common/aligned_buffer.h"
#include "common/rng.h"
#include "direct/direct_1x1.h"
#include "direct/direct_depthwise.h"
#include "direct/direct_f32.h"
#include "direct/direct_int8.h"
#include "lowino/convolution.h"
#include "nn/engines.h"
#include "parallel/thread_pool.h"
#include "quant/quantize.h"
#include "tensor/post_ops.h"
#include "testing/envelope.h"
#include "testing/oracle.h"

namespace lowino {
namespace testing {
namespace {

/// Multiplicative + additive margin applied to oracle-derived thresholds so
/// the engines' FP32-computed values can never exceed them (clipping would
/// void the envelopes).
double with_margin(double v) { return v * 1.0001 + 1e-6; }

struct CaseData {
  std::vector<float> input, weights, bias, residual;
};

CaseData make_data(const FuzzCase& fc) {
  const ConvDesc& d = fc.desc;
  Rng rng(fc.seed ^ 0x9e3779b97f4a7c15ULL);
  CaseData data;
  data.input.resize(d.batch * d.in_channels * d.height * d.width);
  for (float& v : data.input) v = rng.uniform(-1.5f, 1.5f);
  // Grouped filters only span their group's C/groups input channels.
  data.weights.resize(d.out_channels * d.group_in_channels() * d.kernel * d.kernel);
  for (float& v : data.weights) v = rng.uniform(-1.0f, 1.0f);
  if (fc.with_bias) {
    data.bias.resize(d.out_channels);
    for (float& v : data.bias) v = rng.uniform(-0.5f, 0.5f);
  }
  if (fc.sum) {
    data.residual.resize(d.batch * d.out_channels * d.out_height() * d.out_width());
    for (float& v : data.residual) v = rng.uniform(-1.0f, 1.0f);
  }
  return data;
}

/// Checks one engine output against a reference within per-channel bounds.
/// Returns an empty string on success.
std::string check_output(const char* engine, const ConvDesc& d,
                         std::span<const float> out, const std::vector<double>& ref,
                         const std::vector<double>& bound) {
  const std::size_t plane = d.out_height() * d.out_width();
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const std::size_t k = (i / plane) % d.out_channels;
    const double diff = std::abs(static_cast<double>(out[i]) - ref[i]);
    if (!(diff <= bound[k])) {  // negated compare also catches NaN
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "%s: |err|=%.6g exceeds bound %.6g at element %zu (channel %zu)",
                    engine, diff, bound[k], i, k);
      return buf;
    }
  }
  return {};
}

/// Degenerate-descriptor path: every engine constructor must reject the shape
/// with std::invalid_argument — thrown by ConvDesc::validate() before any
/// workspace sizing arithmetic (which would wrap in size_t) and before any
/// aligned allocation happens.
CaseResult run_degenerate_case(const FuzzCase& fc) {
  CaseResult result;
  const ConvDesc& d = fc.desc;
  const std::uint64_t allocs_before = aligned_buffer_alloc_count();
  const auto expect_reject = [&](const char* engine, auto&& construct) {
    ++result.engines_checked;
    if (!result.ok) return;
    try {
      construct();
      result.ok = false;
      result.failure = std::string(engine) + ": accepted a degenerate descriptor";
    } catch (const std::invalid_argument&) {
      // The required rejection.
    } catch (const std::exception& e) {
      result.ok = false;
      result.failure =
          std::string(engine) + ": rejected with the wrong exception: " + e.what();
    }
  };
  expect_reject("fp32-im2col", [&] { [[maybe_unused]] Im2colConvF32 c(d); });
  expect_reject("fp32-winograd", [&] { [[maybe_unused]] Fp32WinoConv c(d, 2); });
  expect_reject("int8-direct", [&] { [[maybe_unused]] Int8DirectConv c(d); });
  expect_reject("lowino-m2", [&] {
    LoWinoConfig cfg;
    cfg.m = 2;
    [[maybe_unused]] LoWinoConvolution c(d, cfg);
  });
  expect_reject("lowino-m4", [&] {
    LoWinoConfig cfg;
    cfg.m = 4;
    [[maybe_unused]] LoWinoConvolution c(d, cfg);
  });
  expect_reject("downscale-winograd", [&] { [[maybe_unused]] DownscaleWinoConv c(d, 2); });
  expect_reject("upcast-winograd", [&] { [[maybe_unused]] UpcastWinoConv c(d); });
  expect_reject("vendor-winograd", [&] { [[maybe_unused]] VendorWinoF23 c(d); });
  expect_reject("int8-1x1", [&] { [[maybe_unused]] Int8Conv1x1Conv c(d); });
  expect_reject("int8-depthwise", [&] { [[maybe_unused]] Int8DepthwiseConv c(d); });
  if (result.ok && aligned_buffer_alloc_count() != allocs_before) {
    result.ok = false;
    result.failure = "degenerate rejection allocated workspace memory";
  }
  return result;
}

}  // namespace

FuzzCase generate_case(std::uint64_t seed) {
  Rng rng(seed);
  FuzzCase fc;
  fc.seed = rng.next_u64();

  ConvDesc& d = fc.desc;
  const std::uint64_t kernel_roll = rng.next_below(10);
  d.kernel = kernel_roll == 0 ? 5 : (kernel_roll <= 2 ? 1 : 3);  // ~10% 5x5, ~20% 1x1
  d.pad = d.kernel == 1 ? 0 : rng.next_below(d.kernel == 3 ? 2 : 3);
  d.batch = 1 + rng.next_below(2);
  d.in_channels = 1 + rng.next_below(48);
  d.out_channels = 1 + rng.next_below(48);
  d.height = d.kernel + rng.next_below(16);
  d.width = d.kernel + rng.next_below(16);
  d.stride = 1;
  // Widened shape dimensions: strongly non-square inputs, stride 2 and
  // asymmetric width padding. Only the direct engines claim the latter two —
  // run_case() checks them numerically and asserts the Winograd engines
  // reject the descriptor cleanly.
  if (rng.next_below(6) == 0) {
    (rng.next_below(2) == 0 ? d.height : d.width) += 16 + rng.next_below(17);
  }
  if (rng.next_below(6) == 0) d.stride = 2;
  if (d.kernel > 1 && rng.next_below(6) == 0) {
    // Any width pad < kernel that differs from the height pad. A 1x1 kernel
    // admits no such pad (the only valid pad is 0), so skip the draw there.
    d.pad_w = (d.pad + 1 + rng.next_below(d.kernel - 1)) % d.kernel;
  }
  while (d.direct_macs() > 2.0e7) {
    if (d.in_channels > 8) {
      d.in_channels /= 2;
    } else if (d.out_channels > 8) {
      d.out_channels /= 2;
    } else {
      d.batch = 1;
      d.height = std::max(d.kernel, d.height / 2);
      d.width = std::max(d.kernel, d.width / 2);
    }
  }
  // Grouped corners (drawn after the cost clamp so the halving above cannot
  // break divisibility): ~1/5 depthwise — the int8_dw workload, channel
  // multiplier 1 or 2 — and ~1/10 a general grouped shape no engine claims.
  const std::uint64_t group_roll = rng.next_below(10);
  if (group_roll < 2 && d.in_channels > 1) {
    d.groups = d.in_channels;
    d.out_channels = d.in_channels * (1 + rng.next_below(2));
  } else if (group_roll == 2) {
    d.in_channels = std::max<std::size_t>(4, d.in_channels + d.in_channels % 2);
    d.out_channels = std::max<std::size_t>(4, d.out_channels + d.out_channels % 2);
    d.groups = 2;
  }

  const std::size_t ms[] = {2, 4, 6};
  fc.m = ms[rng.next_below(3)];
  const ExecutionMode modes[] = {ExecutionMode::kStaged, ExecutionMode::kFused,
                                 ExecutionMode::kAuto};
  fc.mode = modes[rng.next_below(3)];
  fc.threads = 1 + rng.next_below(4);
  fc.relu = rng.next_below(2) == 0;
  fc.with_bias = rng.next_below(2) == 0;
  fc.sum = rng.next_below(3) == 0;
  fc.per_tensor_scales = rng.next_below(4) == 0;
  // Per-edge hand-off dtypes: ~1/3 per activation edge, and a byte-typed
  // residual half the time one exists. Any drawn edge adds the typed
  // execution pass (INT8 direct + LoWino staged/fused) to the case.
  fc.in_u8 = rng.next_below(3) == 0;
  fc.out_u8 = rng.next_below(3) == 0;
  fc.sum_u8 = fc.sum && rng.next_below(2) == 0;

  // Occasionally break the descriptor on purpose: the harness then asserts
  // every engine rejects it cleanly (std::invalid_argument, no allocation)
  // instead of wrapping the size_t out_height()/out_width() arithmetic.
  // Mutate last — the cost clamp above calls direct_macs(), which itself
  // evaluates out_height() and would wrap on a degenerate shape.
  if (rng.next_below(12) == 0) {
    switch (rng.next_below(8)) {
      case 0: d.pad = 0; d.height = d.kernel - 1; break;  // kernel > h + 2p
      case 1: d.pad = 0; d.pad_w = 0; d.width = d.kernel - 1; break;  // kernel > w + 2p
      case 2: d.pad = d.kernel + rng.next_below(2); break;  // pad >= kernel
      case 3: (rng.next_below(2) == 0 ? d.in_channels : d.out_channels) = 0; break;
      case 4: d.stride = 0; break;  // division by zero in out_height()
      case 5: d.pad_w = d.kernel + rng.next_below(2); break;  // width pad >= kernel
      case 6: d.groups = d.in_channels + 1; break;  // never divides in_channels
      case 7: d.kernel = 1; d.pad = 1; break;  // padded 1x1: pad >= kernel
    }
  }
  return fc;
}

std::string describe(const FuzzCase& fc) {
  std::string s = fc.desc.to_string();  // carries pw/s tokens when widened
  s += " p" + std::to_string(fc.desc.pad);
  s += " m" + std::to_string(fc.m);
  s += std::string(" ") + execution_mode_name(fc.mode);
  s += " t" + std::to_string(fc.threads);
  s += fc.relu ? " relu" : "";
  s += fc.with_bias ? " bias" : "";
  s += fc.sum ? " sum" : "";
  s += fc.per_tensor_scales ? " per-tensor" : " per-position";
  s += fc.in_u8 ? " u8in" : "";
  s += fc.out_u8 ? " u8out" : "";
  s += fc.sum_u8 ? " u8sum" : "";
  if (!fc.desc.is_valid()) s += " degenerate";
  s += " seed=" + std::to_string(fc.seed);
  return s;
}

std::string repro_line(std::uint64_t base_seed, std::size_t index) {
  return "LOWINO_TEST_SEED=" + std::to_string(base_seed) +
         " LOWINO_FUZZ_INDEX=" + std::to_string(index) +
         " LOWINO_FUZZ_CASES=1 ./tests/fuzz_conv";
}

CaseResult run_case(const FuzzCase& fc) {
  // A degenerate shape never reaches data generation: make_data() and the
  // oracle both evaluate out_height(), which wraps (or divides by zero) on
  // shapes ConvDesc::validate() rejects.
  if (!fc.desc.is_valid()) return run_degenerate_case(fc);
  CaseResult result;
  const ConvDesc& d = fc.desc;

  // --- Capability cross-check (the PR 6 gating contract, per registry) -----
  // For every registered kind, engine_caps(kind, d).supports must predict the
  // factory exactly: a supported shape constructs, an unsupported one throws
  // std::invalid_argument. This is what lets the session compiler skip
  // candidates without a try/catch probe.
  for (const EngineKind kind : all_engine_kinds()) {
    ++result.engines_checked;
    if (!result.ok) break;
    const EngineCaps caps = engine_caps(kind, d);
    try {
      const auto e = make_conv_engine(kind, d);
      if (!caps.supports) {
        result.ok = false;
        result.failure = std::string(engine_token(kind)) +
                         ": constructed a shape engine_caps reports unsupported";
      }
    } catch (const std::invalid_argument&) {
      if (caps.supports) {
        result.ok = false;
        result.failure = std::string(engine_token(kind)) +
                         ": rejected a shape engine_caps reports supported";
      }
    }
  }
  if (!result.ok) return result;

  const CaseData data = make_data(fc);
  const std::span<const float> bias(data.bias);

  const std::vector<double> ref_plain =
      direct_conv_f64(d, data.input, data.weights, bias, /*relu=*/false);
  std::vector<double> ref_relu;
  if (fc.relu) {
    ref_relu = ref_plain;
    for (double& v : ref_relu) v = std::max(v, 0.0);
  }
  // relu-only reference, for engines without fused-sum support.
  const std::vector<double>& ref_nosum = fc.relu ? ref_relu : ref_plain;
  // Full post-op reference (bias -> +sum -> relu) for post-op engines.
  std::vector<double> ref_full;
  if (fc.sum) {
    ref_full = ref_plain;
    for (std::size_t i = 0; i < ref_full.size(); ++i) {
      ref_full[i] += static_cast<double>(data.residual[i]);
      if (fc.relu) ref_full[i] = std::max(ref_full[i], 0.0);
    }
  }
  const std::vector<double>& ref_post = fc.sum ? ref_full : ref_nosum;
  const PostOps post{fc.relu, fc.sum ? data.residual.data() : nullptr};

  // The fused +sum adds one extra float rounding per element; widen the
  // pre-sum envelope by an ulp of the post-sum magnitude.
  const auto with_sum_slack = [&](std::vector<double> bound) {
    if (!fc.sum) return bound;
    double mag = 1.0;
    for (const double v : ref_post) mag = std::max(mag, std::abs(v));
    const double slack = std::ldexp(mag, -22);
    for (double& b : bound) b += slack;
    return bound;
  };

  const SpatialFilterStats sstats = spatial_filter_stats(d, data.weights);
  const double dmax = abs_max_f64(data.input);
  const double tau_d = with_margin(dmax);

  // --- Per-edge u8 hand-off state (the typed execution paths) --------------
  // The harness quantizes the drawn edges itself and re-derives the oracle
  // reference from the *dequantized* bytes, so edge quantization error
  // cancels exactly and the per-scheme envelopes apply unchanged — only a u8
  // output adds half a requant step (the engine rounds its own FP32 result).
  const bool typed = fc.in_u8 || fc.out_u8 || fc.sum_u8;
  QuantParams in_qp, sum_qp;
  std::vector<std::uint8_t> in_bytes, sum_bytes;
  std::vector<float> in_deq, sum_deq;
  std::vector<double> ref_typed;
  double dmax_typed = dmax;
  if (typed) {
    in_qp = QuantParams::from_threshold(static_cast<float>(tau_d));
    if (fc.in_u8) {
      in_bytes.resize(data.input.size());
      quantize_u8_shift128(data.input, in_qp.scale, in_bytes);
      in_deq.resize(data.input.size());
      dequantize_u8_shift128(in_bytes, in_qp.inv_scale, in_deq);
      dmax_typed = abs_max_f64(in_deq);
    }
    if (fc.sum_u8) {
      sum_qp = QuantParams::from_threshold(
          static_cast<float>(with_margin(abs_max_f64(data.residual))));
      sum_bytes.resize(data.residual.size());
      quantize_u8_shift128(data.residual, sum_qp.scale, sum_bytes);
      sum_deq.resize(data.residual.size());
      dequantize_u8_shift128(sum_bytes, sum_qp.inv_scale, sum_deq);
    }
    ref_typed = fc.in_u8 ? direct_conv_f64(d, in_deq, data.weights, bias, /*relu=*/false)
                         : ref_plain;
    if (fc.sum) {
      const std::vector<float>& res = fc.sum_u8 ? sum_deq : data.residual;
      for (std::size_t i = 0; i < ref_typed.size(); ++i) {
        ref_typed[i] += static_cast<double>(res[i]);
      }
    }
    if (fc.relu) {
      for (double& v : ref_typed) v = std::max(v, 0.0);
    }
  }
  PostOps typed_post;
  typed_post.relu = fc.relu;
  if (fc.sum) {
    if (fc.sum_u8) {
      typed_post.sum_u8 = sum_bytes.data();
      typed_post.sum_u8_inv_scale = sum_qp.inv_scale;
    } else {
      typed_post.sum = data.residual.data();
    }
  }
  const auto typed_sum_slack = [&](std::vector<double>& bound) {
    if (!fc.sum) return;
    double mag = 1.0;
    for (const double v : ref_typed) mag = std::max(mag, std::abs(v));
    const double slack = std::ldexp(mag, -22);
    for (double& b : bound) b += slack;
  };
  // Requant bound/scale: picks an output threshold covering reference +
  // envelope (so saturation is impossible), then widens the bound by half a
  // dequantized step — the round-to-nearest-even error of the requant stage.
  const auto typed_requant = [&](std::vector<double>& bound) {
    double mag = 0.0;
    for (const double v : ref_typed) mag = std::max(mag, std::abs(v));
    double bmax = 0.0;
    for (const double b : bound) bmax = std::max(bmax, b);
    const QuantParams qp =
        QuantParams::from_threshold(static_cast<float>(with_margin(mag + bmax)));
    const double half_step = 0.5 * static_cast<double>(qp.inv_scale);
    for (double& b : bound) b += with_margin(half_step);
    return qp;
  };

  ThreadPool pool(fc.threads);
  std::vector<float> out(ref_plain.size());
  const auto check = [&](const char* engine, const std::vector<double>& ref,
                         const std::vector<double>& bound) {
    ++result.engines_checked;
    if (!result.ok) return;
    const std::string err = check_output(engine, d, out, ref, bound);
    if (!err.empty()) {
      result.ok = false;
      result.failure = err;
    }
  };

  // Fused-epilogue bit-identity referee (the tentpole's contract): run the
  // same engine unfused, apply the element-wise sum-then-relu passes the
  // fused path absorbed, and require exact bit equality with the fused
  // output (see tensor/post_ops.h for why this must hold).
  const auto check_fused_bits = [&](const char* engine, std::span<const float> fused,
                                    std::vector<float>& plain) {
    ++result.engines_checked;
    if (!result.ok) return;
    if (fc.sum) {
      for (std::size_t i = 0; i < plain.size(); ++i) plain[i] += data.residual[i];
    }
    if (fc.relu) {
      for (float& v : plain) v = std::max(0.0f, v);
    }
    for (std::size_t i = 0; i < plain.size(); ++i) {
      if (fused[i] != plain[i]) {
        result.ok = false;
        result.failure = std::string(engine) +
                         ": fused epilogue differs from unfused engine-then-"
                         "elementwise at element " +
                         std::to_string(i) + ": " + std::to_string(fused[i]) + " vs " +
                         std::to_string(plain[i]);
        return;
      }
    }
  };

  // The Winograd family only claims ungrouped unit-stride symmetric-padding
  // r >= 2 shapes; for anything else the eligible direct engines are checked
  // numerically and the Winograd constructors must reject cleanly (asserted
  // engine-by-engine below and via the caps cross-check above).
  const bool winograd_ok =
      d.groups == 1 && d.stride == 1 && d.symmetric_padding() && d.kernel >= 2;

  // One spatial-INT8 typed run (u8 hand-off edges) for an Int8DirectConv-like
  // engine: same surface, same envelope. Shared by int8-direct, int8-1x1 and
  // int8-depthwise.
  const auto run_spatial_typed = [&](const char* name, auto& conv) {
    conv.set_input_threshold(static_cast<float>(tau_d));
    conv.set_filters(data.weights, bias);
    // set_input_u8 adopts the same 127/tau_d scale the threshold implies,
    // so the spatial INT8 envelope carries over unchanged.
    if (fc.in_u8) conv.set_input_u8(in_qp);
    std::vector<double> bound = spatial_int8_budget(d, tau_d, dmax_typed, sstats);
    typed_sum_slack(bound);
    const void* in_ptr = fc.in_u8 ? static_cast<const void*>(in_bytes.data())
                                  : static_cast<const void*>(data.input.data());
    if (fc.out_u8) {
      const QuantParams out_qp = typed_requant(bound);
      conv.set_output_u8(out_qp);
      std::vector<std::uint8_t> o8(out.size());
      conv.execute_typed(in_ptr, o8.data(), &pool, typed_post);
      dequantize_u8_shift128(o8, out_qp.inv_scale, out);
    } else {
      conv.execute_typed(in_ptr, out.data(), &pool, typed_post);
    }
    check(name, ref_typed, bound);
  };

  try {
    if (d.groups == 1) {
      // --- Direct engines (full stride/padding support) --------------------
      const std::vector<double> fp32_direct_bound =
          fp32_budget(d, dmax, sstats, bias, /*amplification=*/1.0);
      direct_conv_f32_reference(d, data.input, data.weights, bias, out, fc.relu, &pool);
      check("fp32-reference", ref_nosum, fp32_direct_bound);

      {
        Im2colConvF32 conv(d);
        conv.set_filters(data.weights, bias);
        conv.execute_nchw(data.input, out, &pool, post);
        check("fp32-im2col", ref_post, with_sum_slack(fp32_direct_bound));
        if (!post.none()) {
          std::vector<float> plain(out.size());
          conv.execute_nchw(data.input, plain, &pool);
          check_fused_bits("fp32-im2col", out, plain);
        }
      }

      {
        Int8DirectConv conv(d);
        conv.set_input_threshold(static_cast<float>(tau_d));
        conv.set_filters(data.weights, bias);
        conv.execute_nchw(data.input, out, &pool, post);
        check("int8-direct", ref_post,
              with_sum_slack(spatial_int8_budget(d, tau_d, dmax, sstats)));
        if (!post.none()) {
          std::vector<float> plain(out.size());
          conv.execute_nchw(data.input, plain, &pool);
          check_fused_bits("int8-direct", out, plain);
        }
      }

      // --- INT8 direct, typed (u8 hand-off edges) --------------------------
      if (typed) {
        Int8DirectConv conv(d);
        run_spatial_typed("int8-direct-typed", conv);
      }

      // --- Dedicated INT8 1x1 engine: pointwise shapes, any stride ---------
      if (d.kernel == 1) {
        {
          Int8Conv1x1Conv conv(d);
          conv.set_input_threshold(static_cast<float>(tau_d));
          conv.set_filters(data.weights, bias);
          conv.execute_nchw(data.input, out, &pool, post);
          check("int8-1x1", ref_post,
                with_sum_slack(spatial_int8_budget(d, tau_d, dmax, sstats)));
          if (!post.none()) {
            std::vector<float> plain(out.size());
            conv.execute_nchw(data.input, plain, &pool);
            check_fused_bits("int8-1x1", out, plain);
          }
        }
        if (typed) {
          Int8Conv1x1Conv conv(d);
          run_spatial_typed("int8-1x1-typed", conv);
        }
      }
    } else if (d.is_depthwise()) {
      // --- Dedicated INT8 depthwise engine ---------------------------------
      {
        Int8DepthwiseConv conv(d);
        conv.set_input_threshold(static_cast<float>(tau_d));
        conv.set_filters(data.weights, bias);
        conv.execute_nchw(data.input, out, &pool, post);
        check("int8-depthwise", ref_post,
              with_sum_slack(spatial_int8_budget(d, tau_d, dmax, sstats)));
        if (!post.none()) {
          std::vector<float> plain(out.size());
          conv.execute_nchw(data.input, plain, &pool);
          check_fused_bits("int8-depthwise", out, plain);
        }
      }
      if (typed) {
        Int8DepthwiseConv conv(d);
        run_spatial_typed("int8-depthwise-typed", conv);
      }
    }
    if (d.groups != 1) {
      // The caps cross-check already asserted that every other registered
      // kind rejects grouped shapes; nothing further runs numerically.
      return result;
    }

    if (!winograd_ok) {
      // Unsupported-shape contract: the same clean std::invalid_argument
      // rejection the degenerate path demands, from every Winograd engine.
      const auto expect_reject = [&](const char* engine, auto&& construct) {
        ++result.engines_checked;
        if (!result.ok) return;
        try {
          construct();
          result.ok = false;
          result.failure =
              std::string(engine) + ": accepted a stride/padding it does not support";
        } catch (const std::invalid_argument&) {
          // The required rejection.
        } catch (const std::exception& e) {
          result.ok = false;
          result.failure =
              std::string(engine) + ": rejected with the wrong exception: " + e.what();
        }
      };
      expect_reject("fp32-winograd", [&] { [[maybe_unused]] Fp32WinoConv c(d, fc.m); });
      expect_reject("lowino", [&] {
        LoWinoConfig cfg;
        cfg.m = fc.m;
        [[maybe_unused]] LoWinoConvolution c(d, cfg);
      });
      expect_reject("downscale-winograd",
                    [&] { [[maybe_unused]] DownscaleWinoConv c(d, fc.m); });
      expect_reject("upcast-winograd", [&] { [[maybe_unused]] UpcastWinoConv c(d); });
      expect_reject("vendor-winograd", [&] { [[maybe_unused]] VendorWinoF23 c(d); });
      return result;
    }

    const TransformMatrices& tm = engine_transform(fc.m, d.kernel);
    const TransformGains gains = transform_gains(tm);
    {
      Fp32WinoConv conv(d, fc.m);
      conv.set_filters(data.weights, bias);
      conv.execute_nchw(data.input, out, &pool);
      check("fp32-winograd", ref_plain,
            fp32_budget(d, dmax, sstats, bias, gains.in_amp_max * gains.g_amp_max));
    }

    // --- LoWino: staged and fused must agree bit-for-bit and sit inside the
    // Winograd-domain quantization envelope. ------------------------------
    {
      const std::vector<double> v_absmax = transformed_input_absmax(d, fc.m, data.input);
      std::vector<double> taus(v_absmax.size());
      double tau_uniform = 0.0;
      for (std::size_t t = 0; t < taus.size(); ++t) {
        taus[t] = with_margin(v_absmax[t]);
        tau_uniform = std::max(tau_uniform, taus[t]);
      }
      if (fc.per_tensor_scales) std::fill(taus.begin(), taus.end(), tau_uniform);
      const TransformedFilterStats fstats =
          transformed_filter_stats(d, fc.m, data.weights);
      const std::vector<double> lw_bound = with_sum_slack(lowino_budget(d, tm, taus, fstats));

      const auto run_lowino = [&](ExecutionMode mode, std::vector<float>& dst,
                                  const PostOps& p) {
        LoWinoConfig cfg;
        cfg.m = fc.m;
        cfg.execution_mode = mode;
        cfg.input_scales = fc.per_tensor_scales ? ScaleGranularity::kPerTensor
                                                : ScaleGranularity::kPerPosition;
        LoWinoConvolution conv(d, cfg);
        if (fc.per_tensor_scales) {
          conv.set_uniform_input_threshold(static_cast<float>(tau_uniform));
        } else {
          std::vector<float> taus_f(taus.begin(), taus.end());
          conv.set_input_thresholds(taus_f);
        }
        conv.set_filters(data.weights, bias);
        conv.execute_nchw(data.input, dst, &pool, p);
      };

      std::vector<float> out_fused(out.size());
      run_lowino(ExecutionMode::kStaged, out, post);
      check("lowino-staged", ref_post, lw_bound);
      run_lowino(ExecutionMode::kFused, out_fused, post);
      std::swap(out, out_fused);
      check("lowino-fused", ref_post, lw_bound);
      std::swap(out, out_fused);

      ++result.engines_checked;
      if (result.ok && out != out_fused) {
        std::size_t i = 0;
        while (i < out.size() && out[i] == out_fused[i]) ++i;
        result.ok = false;
        result.failure = "lowino staged/fused mismatch at element " + std::to_string(i) +
                         ": " + std::to_string(out[i]) + " vs " +
                         std::to_string(out_fused[i]);
      }

      if (!post.none() && result.ok) {
        std::vector<float> plain(out.size());
        run_lowino(ExecutionMode::kStaged, plain, PostOps{});
        check_fused_bits("lowino-staged", out, plain);
      }

      if (fc.mode == ExecutionMode::kAuto) {
        run_lowino(ExecutionMode::kAuto, out, post);
        check("lowino-auto", ref_post, lw_bound);
      }

      // --- LoWino, typed (u8 hand-off edges) -------------------------------
      if (typed && result.ok) {
        // The Winograd-domain thresholds must cover the values the engine
        // actually transforms — the *dequantized* input when the edge is u8 —
        // or V-domain clipping would void the envelope.
        std::vector<double> taus_t = taus;
        double tau_uniform_t = tau_uniform;
        if (fc.in_u8) {
          const std::vector<double> v_absmax_t =
              transformed_input_absmax(d, fc.m, in_deq);
          tau_uniform_t = 0.0;
          for (std::size_t t = 0; t < taus_t.size(); ++t) {
            taus_t[t] = with_margin(v_absmax_t[t]);
            tau_uniform_t = std::max(tau_uniform_t, taus_t[t]);
          }
          if (fc.per_tensor_scales) std::fill(taus_t.begin(), taus_t.end(), tau_uniform_t);
        }
        std::vector<double> bound = lowino_budget(d, tm, taus_t, fstats);
        typed_sum_slack(bound);
        QuantParams out_qp;
        if (fc.out_u8) out_qp = typed_requant(bound);

        const auto run_typed = [&](ExecutionMode mode, void* dst) {
          LoWinoConfig cfg;
          cfg.m = fc.m;
          cfg.execution_mode = mode;
          cfg.input_scales = fc.per_tensor_scales ? ScaleGranularity::kPerTensor
                                                  : ScaleGranularity::kPerPosition;
          LoWinoConvolution conv(d, cfg);
          if (fc.per_tensor_scales) {
            conv.set_uniform_input_threshold(static_cast<float>(tau_uniform_t));
          } else {
            std::vector<float> taus_f(taus_t.begin(), taus_t.end());
            conv.set_input_thresholds(taus_f);
          }
          conv.set_filters(data.weights, bias);
          if (fc.in_u8) conv.set_input_u8(in_qp);
          if (fc.out_u8) conv.set_output_u8(out_qp);
          const void* in_ptr = fc.in_u8 ? static_cast<const void*>(in_bytes.data())
                                        : static_cast<const void*>(data.input.data());
          conv.execute_nchw_typed(in_ptr, dst, &pool, typed_post);
        };

        const std::size_t out_sz = out.size() * (fc.out_u8 ? 1 : sizeof(float));
        std::vector<std::uint8_t> t_staged(out_sz), t_fused(out_sz);
        run_typed(ExecutionMode::kStaged, t_staged.data());
        run_typed(ExecutionMode::kFused, t_fused.data());
        ++result.engines_checked;
        if (result.ok && t_staged != t_fused) {
          std::size_t i = 0;
          while (i < out_sz && t_staged[i] == t_fused[i]) ++i;
          result.ok = false;
          result.failure =
              "lowino-typed staged/fused byte mismatch at byte " + std::to_string(i);
        }
        if (fc.out_u8) {
          dequantize_u8_shift128(t_staged, out_qp.inv_scale, out);
        } else {
          std::memcpy(out.data(), t_staged.data(), out_sz);
        }
        check("lowino-typed", ref_typed, bound);
      }
    }

    // --- Spatially quantized Winograd baselines ----------------------------
    {
      DownscaleWinoConv conv(d, fc.m);
      conv.set_input_threshold(static_cast<float>(tau_d));
      conv.set_filters(data.weights, bias);
      conv.execute_nchw(data.input, out, &pool);
      check("downscale-winograd", ref_plain, downscale_budget(d, tm, tau_d, sstats));
    }
    if (d.kernel == 3) {
      {
        UpcastWinoConv conv(d);
        conv.set_input_threshold(static_cast<float>(tau_d));
        conv.set_filters(data.weights, bias);
        conv.execute_nchw(data.input, out, &pool);
        check("upcast-winograd", ref_plain, spatial_int8_budget(d, tau_d, dmax, sstats));
      }
      {
        VendorWinoF23 conv(d);
        conv.set_input_threshold(static_cast<float>(tau_d));
        conv.set_filters(data.weights, bias);
        conv.execute_nchw(data.input, out, &pool);
        check("vendor-winograd", ref_plain,
              downscale_budget(d, canonical_f23(), tau_d, sstats));
      }
    }
  } catch (const std::exception& e) {
    result.ok = false;
    result.failure = std::string("engine threw: ") + e.what();
  }
  return result;
}

FuzzCase shrink_case(FuzzCase fc, std::size_t max_attempts) {
  const auto still_fails = [&](const FuzzCase& candidate) {
    return !run_case(candidate).ok;
  };
  using Mutator = bool (*)(FuzzCase&);
  static const Mutator mutators[] = {
      [](FuzzCase& c) { return std::exchange(c.threads, 1) != 1; },
      [](FuzzCase& c) { return std::exchange(c.desc.batch, 1) != 1; },
      [](FuzzCase& c) { return std::exchange(c.relu, false); },
      [](FuzzCase& c) {
        c.sum_u8 = false;  // sum_u8 implies sum; clear both together
        return std::exchange(c.sum, false);
      },
      [](FuzzCase& c) { return std::exchange(c.with_bias, false); },
      [](FuzzCase& c) { return std::exchange(c.in_u8, false); },
      [](FuzzCase& c) { return std::exchange(c.out_u8, false); },
      [](FuzzCase& c) { return std::exchange(c.sum_u8, false); },
      [](FuzzCase& c) { return std::exchange(c.per_tensor_scales, false); },
      [](FuzzCase& c) {
        return std::exchange(c.mode, ExecutionMode::kStaged) != ExecutionMode::kStaged;
      },
      [](FuzzCase& c) {
        if (c.desc.in_channels <= 1) return false;
        c.desc.in_channels = (c.desc.in_channels + 1) / 2;
        return true;
      },
      [](FuzzCase& c) {
        if (c.desc.out_channels <= 1) return false;
        c.desc.out_channels = (c.desc.out_channels + 1) / 2;
        return true;
      },
      [](FuzzCase& c) {
        if (c.desc.height <= c.desc.kernel) return false;
        c.desc.height = std::max(c.desc.kernel, (c.desc.height + 1) / 2);
        return true;
      },
      [](FuzzCase& c) {
        if (c.desc.width <= c.desc.kernel) return false;
        c.desc.width = std::max(c.desc.kernel, (c.desc.width + 1) / 2);
        return true;
      },
      [](FuzzCase& c) { return std::exchange(c.desc.pad, 0) != 0; },
      [](FuzzCase& c) { return std::exchange(c.desc.stride, 1) != 1; },
      [](FuzzCase& c) { return std::exchange(c.desc.groups, 1) != 1; },
      [](FuzzCase& c) {
        if (c.desc.symmetric_padding()) return false;
        c.desc.pad_w = ConvDesc::kPadLikeHeight;
        return true;
      },
  };

  std::size_t attempts = 0;
  bool improved = true;
  while (improved && attempts < max_attempts) {
    improved = false;
    for (const Mutator mutate : mutators) {
      if (attempts >= max_attempts) break;
      FuzzCase candidate = fc;
      if (!mutate(candidate)) continue;
      ++attempts;
      if (still_fails(candidate)) {
        fc = candidate;
        improved = true;
      }
    }
  }
  return fc;
}

}  // namespace testing
}  // namespace lowino

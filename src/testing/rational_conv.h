// Exact rational convolution references.
//
// Every float is a dyadic rational, so a float-valued convolution problem has
// an *exact* answer in rational arithmetic. Computing it twice — once with
// direct summation, once through the Winograd identity with the engines'
// exact rational matrices (TransformMatrices::*_q) — separates the transform
// error (provably zero: both paths must agree term-for-term) from the
// quantization and floating-point rounding the envelope model budgets for.
//
// Rational numerators/denominators are int64 (i128 intermediates), so feed
// these functions inputs on a coarse dyadic grid (e.g. multiples of 1/256);
// Rational throws std::overflow_error rather than silently wrapping when a
// problem is too big for exact arithmetic.
#pragma once

#include <span>
#include <vector>

#include "tensor/conv_desc.h"
#include "winograd/rational.h"

namespace lowino {
namespace testing {

/// Exact conversion: any finite float is m * 2^e with 24-bit m. Throws
/// std::overflow_error for exponents the int64 denominator cannot hold
/// (|x| < ~2^-39 nonzero) and std::domain_error for non-finite input.
Rational rational_from_float(float x);

std::vector<Rational> rationalize(std::span<const float> values);

/// Exact direct convolution (NCHW in, B x K x OH x OW out).
std::vector<Rational> rational_direct_conv(const ConvDesc& desc,
                                           std::span<const Rational> input,
                                           std::span<const Rational> weights,
                                           std::span<const Rational> bias = {});

/// Exact Winograd convolution F(m x m, r x r) via the engines' rational
/// matrices: Y = A^T [(G g G^T) . (B^T d B)] A per tile, accumulated over
/// input channels, with the engines' zero-padded edge tiling. Must equal
/// rational_direct_conv exactly for every input.
std::vector<Rational> rational_winograd_conv(const ConvDesc& desc, std::size_t m,
                                             std::span<const Rational> input,
                                             std::span<const Rational> weights,
                                             std::span<const Rational> bias = {});

}  // namespace testing
}  // namespace lowino

// Derived accuracy envelopes: per-output-channel absolute error bounds for
// every quantization scheme in the repository.
//
// The conformance harness does not assert "close to the reference" with an
// arbitrary tolerance — it derives, per case, the worst-case error each
// engine's quantization scheme can introduce (Section 3's error analysis,
// instantiated per scheme) and asserts the observed error stays inside it.
// All bounds assume *clipping-free* thresholds (tau >= the actual abs-max of
// what gets quantized); the fuzz harness guarantees that by computing
// thresholds from the oracle statistics, which also makes the bounds sharp
// enough to catch real defects (see EnvelopeRejectsCorruptedOutput).
//
// Derivation sketch (per Winograd output Y(i,j) = sum_p AT[i,s] AT[j,t] M(p),
// p = (s, t)): |dY| <= sum_p wmax(p) * E_M(p, k) where wmax(p) is the product
// of AT column abs-maxima and E_M bounds the element-wise error of the
// multiplication stage,
//   E_M(p, k) <= sum_c |U| * eV  +  C * Vmag * eU  +  C * eV * eU  + slack
// with eV / eU the scheme's per-element input/filter errors in the Winograd
// domain. ReLU is 1-Lipschitz, so post-op cases reuse the same bounds.
#pragma once

#include <span>
#include <vector>

#include "tensor/conv_desc.h"
#include "testing/oracle.h"
#include "winograd/transform.h"

namespace lowino {
namespace testing {

/// Matrix-derived gain factors of one transform set (all lengths T).
struct TransformGains {
  std::vector<double> out_weight;  ///< wmax(p): AT column abs-max product
  std::vector<double> in_amp;      ///< amp2(p): BT row abs-sum product
  std::vector<double> g_amp;       ///< gg2(p): G row abs-sum product
  std::vector<double> in_amp_sq;   ///< BT row sum-of-squares product
  std::vector<double> g_amp_sq;    ///< G row sum-of-squares product
  double in_amp_max = 1.0;         ///< max_p in_amp — the paper's 4x / 100x
  double g_amp_max = 1.0;
};
TransformGains transform_gains(const TransformMatrices& tm);

/// Every budget below is min(worst-case, stochastic): the worst-case bound
/// assumes all rounding residues align adversarially (a hard guarantee, but
/// for F(4x4,3x3)+ it approaches the output magnitude — the amplification
/// effect of Section 2.3 made concrete); the stochastic bound models the
/// residues as independent zero-mean noise and allows kSigmaFactor standard
/// deviations, which is what makes the envelope sharp for wide channel
/// counts. At 12 sigma over bounded summands a violation is not bad luck —
/// it is a defect.
inline constexpr double kSigmaFactor = 12.0;

/// LoWino (Winograd-domain quantization): `taus` are the per-position input
/// thresholds actually configured (length T; pass the uniform value T times
/// for per-tensor granularity). Filter scales are exact per-(t, k) abs-max,
/// matching the engine. Returns B(k), length K.
std::vector<double> lowino_budget(const ConvDesc& desc, const TransformMatrices& tm,
                                  std::span<const double> taus,
                                  const TransformedFilterStats& fstats);

/// Down-scaling baselines (downscale / vendor): spatial INT8 quantization
/// with threshold `tau_d`, then a post-transform re-round to INT8 at the
/// fixed 1/amplification factor — the re-round term dominates and grows with
/// the tile size, which is exactly the paper's Figure 2(b) critique.
std::vector<double> downscale_budget(const ConvDesc& desc, const TransformMatrices& tm,
                                     double tau_d, const SpatialFilterStats& wstats);

/// Spatial INT8 with exact integer arithmetic after quantization (up-casting
/// Winograd and the INT8 direct engine): only the spatial quantization steps
/// contribute. `dmax` is the actual input abs-max (<= tau_d).
std::vector<double> spatial_int8_budget(const ConvDesc& desc, double tau_d, double dmax,
                                        const SpatialFilterStats& wstats);

/// FP32 engines: rounding-only slack. `amplification` folds in the
/// intermediate growth of a Winograd pipeline (pass
/// gains.in_amp_max * gains.g_amp_max; 1.0 for direct convolution).
std::vector<double> fp32_budget(const ConvDesc& desc, double dmax,
                                const SpatialFilterStats& wstats,
                                std::span<const float> bias, double amplification);

}  // namespace testing
}  // namespace lowino

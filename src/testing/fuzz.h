// Randomized differential conformance harness.
//
// A FuzzCase is a fully deterministic convolution problem: shape, tile size,
// execution mode, thread count, post-ops and scale granularity are drawn from
// a seed, and the input/weight data are regenerated from that same seed. One
// run_case() call executes *every* engine in the repository on the problem —
// LoWino staged + fused (always both, checked bit-identical), the
// down-scaling / up-casting / vendor baselines, INT8 direct and the FP32
// engines — and checks each against the double-precision oracle within the
// scheme-specific error envelope of testing/envelope.h.
//
// Failures reproduce from a single printed line (see repro_line); the driver
// shrinks a failing case to a minimal one before reporting.
#pragma once

#include <cstdint>
#include <string>

#include "lowino/engine_config.h"
#include "tensor/conv_desc.h"

namespace lowino {
namespace testing {

struct FuzzCase {
  std::uint64_t seed = 0;  ///< data seed: input/weight/bias values
  ConvDesc desc;
  std::size_t m = 4;  ///< LoWino / FP32-Winograd / downscale tile size
  ExecutionMode mode = ExecutionMode::kAuto;  ///< extra LoWino instance's mode
  std::size_t threads = 1;
  bool relu = false;
  bool with_bias = true;
  bool sum = false;  ///< fused residual "+sum" epilogue (post-op engines)
  bool per_tensor_scales = false;  ///< LoWino input-scale granularity
  // Per-edge hand-off dtypes (tensor/dtype.h): when any is set, run_case()
  // additionally runs the u8-capable engines (INT8 direct, LoWino) through
  // their typed entry points with pre-quantized u8 activations on the drawn
  // edges and checks the dequantized result against the oracle within the
  // same per-scheme envelope (widened by half a requant step on u8 outputs).
  bool in_u8 = false;   ///< input edge carries u8 bytes
  bool out_u8 = false;  ///< output edge requantizes to u8
  bool sum_u8 = false;  ///< residual edge carries u8 bytes (implies sum)
};

/// Draws a case from `seed`: N/C/K/H/W, pads, ReLU/bias on-off, F(2/4/6)
/// (r = 5 occasionally, r = 1 pointwise ~1/5), staged/fused/auto, 1..4
/// threads — plus the widened dimensions: strongly non-square inputs (~1/6),
/// stride 2 (~1/6), asymmetric width padding (~1/6), depthwise groups with
/// channel multiplier 1 or 2 (~1/5) and a general grouped shape no engine
/// claims (~1/10). The shape is cost-clamped so a full engine sweep stays in
/// the low tens of milliseconds. Roughly 1 in 12 cases is deliberately
/// degenerate (kernel larger than the padded input, pad >= kernel on either
/// axis — including a padded 1x1 —, zero channels, stride 0, groups that do
/// not divide the channels); run_case() then asserts clean rejection instead
/// of numeric conformance.
FuzzCase generate_case(std::uint64_t seed);

/// Human-readable one-line description ("B1 C17 K5 H9 W12 r3 p1 m4 fused t2
/// relu bias per-position").
std::string describe(const FuzzCase& fc);

/// The single-line environment repro for case `index` of a run seeded with
/// `base_seed` (what the driver prints on failure).
std::string repro_line(std::uint64_t base_seed, std::size_t index);

struct CaseResult {
  bool ok = true;
  std::string failure;  ///< first violation: engine, channel, error vs bound
  std::size_t engines_checked = 0;
};

/// Runs every applicable engine on the case and checks the envelopes.
/// Post-op-capable engines (FP32/INT8 direct, LoWino) run with the fused
/// relu/+sum epilogue of the case and are additionally checked bit-identical
/// against the same engine run unfused followed by the element-wise
/// sum-then-relu reference. Cases with any per-edge u8 dtype drawn
/// (in_u8/out_u8/sum_u8) also run the typed execution paths: the harness
/// quantizes the drawn edges to u8 itself, re-derives the oracle reference
/// from the dequantized values (so edge quantization error cancels exactly)
/// and checks the per-scheme envelope on the result, with LoWino staged and
/// fused typed runs required bit-identical. Every valid case first
/// cross-checks engine_caps(kind, desc).supports against make_conv_engine for
/// every registered kind: supported shapes must construct, unsupported ones
/// must throw std::invalid_argument. Cases with stride != 1, asymmetric
/// padding or r == 1 run the eligible direct engines numerically and assert
/// every Winograd engine rejects the descriptor (they claim no support);
/// depthwise cases run int8-depthwise numerically and other grouped cases
/// only exercise the rejection contract. Never throws for a conforming
/// stack; engine exceptions are reported as failures. Degenerate cases
/// instead assert that every engine constructor throws std::invalid_argument
/// without allocating workspace memory.
CaseResult run_case(const FuzzCase& fc);

/// Greedily shrinks a failing case (smaller shape, fewer features) while it
/// keeps failing; `max_attempts` caps the number of run_case() re-executions.
FuzzCase shrink_case(FuzzCase fc, std::size_t max_attempts = 48);

}  // namespace testing
}  // namespace lowino

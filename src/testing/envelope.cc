#include "testing/envelope.h"

#include <algorithm>
#include <cmath>

namespace lowino {
namespace testing {
namespace {

/// Quantization step (after de-quantization) of an INT8 grid covering
/// [-tau, tau]: half the grid spacing.
double half_step(double tau) { return 0.5 * tau / 127.0; }

/// Relative slack for FP32 arithmetic inside the integer engines (transforms
/// and de-quantization run in FP32). Sized as C * r * r * eps with headroom —
/// an engineering margin, validated by the fuzz corpus, always far below the
/// quantization terms it accompanies.
double float_slack_rel(const ConvDesc& desc) {
  // Each output only accumulates its group's C/groups input channels.
  const double macs = static_cast<double>(desc.group_in_channels()) *
                      static_cast<double>(desc.kernel * desc.kernel);
  return 8.0 * macs * 1.2e-7;
}

/// max over output pixels (i, j) of sum_{s,t} |AT[i,s]|^pw |AT[j,t]|^pw
/// em[s,t]: the exact output-transform weighting of per-position
/// multiplication errors (pw = 1) or error variances (pw = 2). Sharper than
/// a per-position max over AT rows, which matters for the large-entry
/// F(4x4,3x3) / F(6x6,3x3) matrices.
double at_weighted_max(const TransformMatrices& tm, const std::vector<double>& em,
                       int pw) {
  const std::size_t m = tm.m, alpha = tm.alpha;
  double worst = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      double acc = 0.0;
      for (std::size_t s = 0; s < alpha; ++s) {
        double ai = std::abs(tm.at(i, s));
        if (pw == 2) ai *= ai;
        if (ai == 0.0) continue;
        double row = 0.0;
        for (std::size_t t = 0; t < alpha; ++t) {
          double aj = std::abs(tm.at(j, t));
          if (pw == 2) aj *= aj;
          row += aj * em[s * alpha + t];
        }
        acc += ai * row;
      }
      worst = std::max(worst, acc);
    }
  }
  return worst;
}

/// Variance of the rounding residue of an INT8 grid over [-tau, tau]
/// (uniform over one grid step).
double step_var(double tau) {
  const double step = tau / 127.0;
  return step * step / 12.0;
}

}  // namespace

TransformGains transform_gains(const TransformMatrices& tm) {
  const std::size_t m = tm.m, r = tm.r, alpha = tm.alpha;
  std::vector<double> at_colmax(alpha, 0.0), bt_rowsum(alpha, 0.0), g_rowsum(alpha, 0.0);
  std::vector<double> bt_rowsq(alpha, 0.0), g_rowsq(alpha, 0.0);
  for (std::size_t s = 0; s < alpha; ++s) {
    for (std::size_t i = 0; i < m; ++i) {
      at_colmax[s] = std::max(at_colmax[s], std::abs(tm.at(i, s)));
    }
    for (std::size_t j = 0; j < alpha; ++j) {
      bt_rowsum[s] += std::abs(tm.bt(s, j));
      bt_rowsq[s] += tm.bt(s, j) * tm.bt(s, j);
    }
    for (std::size_t j = 0; j < r; ++j) {
      g_rowsum[s] += std::abs(tm.g(s, j));
      g_rowsq[s] += tm.g(s, j) * tm.g(s, j);
    }
  }
  TransformGains gains;
  gains.out_weight.resize(alpha * alpha);
  gains.in_amp.resize(alpha * alpha);
  gains.g_amp.resize(alpha * alpha);
  gains.in_amp_sq.resize(alpha * alpha);
  gains.g_amp_sq.resize(alpha * alpha);
  for (std::size_t s = 0; s < alpha; ++s) {
    for (std::size_t t = 0; t < alpha; ++t) {
      gains.out_weight[s * alpha + t] = at_colmax[s] * at_colmax[t];
      gains.in_amp[s * alpha + t] = bt_rowsum[s] * bt_rowsum[t];
      gains.g_amp[s * alpha + t] = g_rowsum[s] * g_rowsum[t];
      gains.in_amp_sq[s * alpha + t] = bt_rowsq[s] * bt_rowsq[t];
      gains.g_amp_sq[s * alpha + t] = g_rowsq[s] * g_rowsq[t];
    }
  }
  gains.in_amp_max = *std::max_element(gains.in_amp.begin(), gains.in_amp.end());
  gains.g_amp_max = *std::max_element(gains.g_amp.begin(), gains.g_amp.end());
  return gains;
}

std::vector<double> lowino_budget(const ConvDesc& desc, const TransformMatrices& tm,
                                  std::span<const double> taus,
                                  const TransformedFilterStats& fstats) {
  const std::size_t T = tm.alpha * tm.alpha, K = fstats.k;
  const double C = static_cast<double>(desc.in_channels);
  const double slack = float_slack_rel(desc);
  std::vector<double> bound(K, 0.0);
  std::vector<double> em(T), fs(T), vm(T);
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t t = 0; t < T; ++t) {
      const double tau = taus[t];
      const double umax = fstats.abs_max[t * K + k];
      const double usum = fstats.abs_sum[t * K + k];
      const double ev = half_step(tau);   // input quantization, per element
      const double eu = half_step(umax);  // filter quantization, per element
      em[t] = usum * ev + C * tau * eu + C * ev * eu;
      fs[t] = slack * (usum * tau + C * tau * umax);  // FP32 transform rounding
      // Variance of the same stage: sum over c of U^2 var_v + V^2 var_u
      // (sum_c U^2 <= umax * usum; V^2 <= tau^2).
      vm[t] = usum * umax * step_var(tau) + C * tau * tau * step_var(umax) +
              C * step_var(tau) * step_var(umax);
    }
    const double float_slack = at_weighted_max(tm, fs, 1);
    const double det = at_weighted_max(tm, em, 1);
    const double stoch = kSigmaFactor * std::sqrt(at_weighted_max(tm, vm, 2));
    bound[k] = std::min(det, stoch) + float_slack + 1e-6;
  }
  return bound;
}

std::vector<double> downscale_budget(const ConvDesc& desc, const TransformMatrices& tm,
                                     double tau_d, const SpatialFilterStats& wstats) {
  const TransformGains gains = transform_gains(tm);
  const std::size_t T = tm.alpha * tm.alpha, K = wstats.k;
  const double C = static_cast<double>(desc.in_channels);
  const double slack = float_slack_rel(desc);
  const double ed = half_step(tau_d);  // spatial input quantization
  std::vector<double> bound(K, 0.0);
  std::vector<double> em(T), fs(T), vm(T);
  for (std::size_t k = 0; k < K; ++k) {
    const double wmax = wstats.abs_max[k];
    const double ew = half_step(wmax);  // spatial per-channel filter quantization
    for (std::size_t t = 0; t < T; ++t) {
      // Winograd-domain per-element input error: transformed spatial error
      // plus the post-transform re-round at the fixed 1/amp_max factor.
      const double ev = gains.in_amp[t] * ed + half_step(gains.in_amp_max * tau_d);
      const double vmag = gains.in_amp[t] * tau_d + ev;
      // Same structure for the filters at the fixed 1/g_amp_max factor.
      const double eu = gains.g_amp[t] * ew + half_step(gains.g_amp_max * wmax);
      const double umag = gains.g_amp[t] * wmax + eu;
      em[t] = C * (umag * ev + vmag * eu + ev * eu);
      fs[t] = slack * C * vmag * umag;
      // Variances propagate through the linear transforms with squared
      // coefficients; the fixed-factor re-round adds one more uniform step.
      const double var_v = gains.in_amp_sq[t] * step_var(tau_d) +
                           step_var(gains.in_amp_max * tau_d);
      const double var_u = gains.g_amp_sq[t] * step_var(wmax) +
                           step_var(gains.g_amp_max * wmax);
      vm[t] = C * (umag * umag * var_v + vmag * vmag * var_u + var_v * var_u);
    }
    const double float_slack = at_weighted_max(tm, fs, 1);
    const double det = at_weighted_max(tm, em, 1);
    const double stoch = kSigmaFactor * std::sqrt(at_weighted_max(tm, vm, 2));
    bound[k] = std::min(det, stoch) + float_slack + 1e-6;
  }
  return bound;
}

std::vector<double> spatial_int8_budget(const ConvDesc& desc, double tau_d, double dmax,
                                        const SpatialFilterStats& wstats) {
  const std::size_t K = wstats.k;
  const double patch = static_cast<double>(desc.group_in_channels()) *
                       static_cast<double>(desc.kernel * desc.kernel);
  const double slack = float_slack_rel(desc);
  const double ed = half_step(tau_d);
  std::vector<double> bound(K, 0.0);
  for (std::size_t k = 0; k < K; ++k) {
    const double wmax = wstats.abs_max[k];
    const double ew = half_step(wmax);
    const double det = wstats.abs_sum[k] * ed + patch * (dmax * ew + ed * ew);
    // Variance per patch term: w^2 var_d + d^2 var_w + var_d var_w, with
    // sum w^2 <= wmax * abs_sum and sum d^2 <= patch * dmax^2.
    const double var = wmax * wstats.abs_sum[k] * step_var(tau_d) +
                       patch * dmax * dmax * step_var(wmax) +
                       patch * step_var(tau_d) * step_var(wmax);
    const double stoch = kSigmaFactor * std::sqrt(var);
    bound[k] = std::min(det, stoch) + slack * (wstats.abs_sum[k] * dmax) + 1e-6;
  }
  return bound;
}

std::vector<double> fp32_budget(const ConvDesc& desc, double dmax,
                                const SpatialFilterStats& wstats,
                                std::span<const float> bias, double amplification) {
  const std::size_t K = wstats.k;
  const double macs = static_cast<double>(desc.group_in_channels()) *
                      static_cast<double>(desc.kernel * desc.kernel);
  // gamma_n-style dot-product bound with headroom for the blocked/vectorized
  // summation orders, scaled by the Winograd intermediate growth.
  const double rel = 16.0 * (macs + 32.0) * 1.2e-7 * std::max(1.0, amplification);
  std::vector<double> bound(K, 0.0);
  for (std::size_t k = 0; k < K; ++k) {
    const double babs = k < bias.size() ? std::abs(static_cast<double>(bias[k])) : 0.0;
    bound[k] = rel * (wstats.abs_sum[k] * dmax + babs) + 1e-6;
  }
  return bound;
}

}  // namespace testing
}  // namespace lowino

// Exact reference oracles for conformance testing (independent of the
// production stack).
//
// Every production engine shares layout/transform/GEMM machinery, so a bug in
// that machinery could cancel out in engine-vs-engine comparisons. The
// functions here use nothing from src/lowino, src/gemm or src/tensor: plain
// NCHW loops with double (or int64) accumulation, plus scalar double
// implementations of the Winograd-domain statistics the accuracy-envelope
// model (testing/envelope.h) needs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/conv_desc.h"
#include "winograd/transform.h"

namespace lowino {
namespace testing {

/// Direct convolution with double accumulation: the floating-point oracle.
/// Output is B x K x OH x OW (row-major), `bias` optional (length K),
/// `relu` applies max(0, .) after the bias.
std::vector<double> direct_conv_f64(const ConvDesc& desc, std::span<const float> input,
                                    std::span<const float> weights,
                                    std::span<const float> bias = {}, bool relu = false);

/// Direct convolution over already-quantized operands with int64
/// accumulation: *exact* — no rounding anywhere — so any correctly
/// implemented integer engine path must match it bit-for-bit after its own
/// (deterministic) de-quantization. Output is B x K x OH x OW.
std::vector<std::int64_t> direct_conv_i64(const ConvDesc& desc,
                                          std::span<const std::int8_t> input,
                                          std::span<const std::int8_t> weights);

/// The transform matrices the production engines select for F(m, r): the
/// canonical Lavin matrices for F(2x2,3x3) / F(4x4,3x3), the generated
/// Cook-Toom matrices otherwise. Winograd-domain statistics must be computed
/// with the *same* matrices or the thresholds they imply are meaningless.
const TransformMatrices& engine_transform(std::size_t m, std::size_t r);

/// Per-tile-position abs-max of the transformed input B^T d B over every
/// tile of every image/channel (length T = alpha^2). Computed in double from
/// the NCHW input with the same zero-padding / edge-tiling the engines use.
/// This is what a clipping-free Winograd-domain threshold must dominate.
std::vector<double> transformed_input_absmax(const ConvDesc& desc, std::size_t m,
                                             std::span<const float> input);

/// Per-(t, k) statistics of the transformed filters U = G g G^T.
struct TransformedFilterStats {
  std::size_t t_elems = 0;
  std::size_t k = 0;
  std::vector<double> abs_max;  ///< [t * k + k_i]: max over c of |U(t, k, c)|
  std::vector<double> abs_sum;  ///< [t * k + k_i]: sum over c of |U(t, k, c)|
};
TransformedFilterStats transformed_filter_stats(const ConvDesc& desc, std::size_t m,
                                                std::span<const float> weights);

/// Per-output-channel statistics of the spatial filters (for the
/// spatial-domain quantization envelopes).
struct SpatialFilterStats {
  std::size_t k = 0;
  std::vector<double> abs_max;  ///< per k: max element magnitude
  std::vector<double> abs_sum;  ///< per k: sum of |w| over C * r * r
};
SpatialFilterStats spatial_filter_stats(const ConvDesc& desc,
                                        std::span<const float> weights);

/// abs-max in double (quantize.h's abs_max returns float; the envelope wants
/// the exact value).
double abs_max_f64(std::span<const float> values);

}  // namespace testing
}  // namespace lowino

#include "gemm/int8_gemm.h"

#include <cassert>
#include <cstring>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/cpu_features.h"
#include "gemm/vnni_kernels.h"
#include "parallel/thread_pool.h"
#include "profile/profiler.h"

#ifdef LOWINO_COMPILE_AVX512
#include <immintrin.h>
#endif

namespace lowino {
namespace {

/// Streams one 64-byte line (16 int32) to `dst`; falls back to regular stores.
inline void store_line(std::int32_t* dst, const std::int32_t* src, bool nt) {
#ifdef LOWINO_COMPILE_AVX512
  if (cpu_features().has_avx512_kernels()) {
    const __m512i line = _mm512_loadu_si512(src);
    if (nt) {
      _mm512_stream_si512(reinterpret_cast<__m512i*>(dst), line);
    } else {
      _mm512_store_si512(dst, line);
    }
    return;
  }
#endif
  (void)nt;
  std::memcpy(dst, src, 64);
}

inline void store_fence() {
#ifdef LOWINO_COMPILE_AVX512
  if (cpu_features().has_avx512_kernels()) _mm_sfence();
#endif
}

/// Runs the register-blocked kernel sweep over one (rows x k_blk) accumulator
/// panel for one (v_panel, u_panel) cache block.
void run_panel(const std::uint8_t* v_panel, std::size_t v_stride, const std::int8_t* u_panel,
               std::size_t u_stride, std::int32_t* acc, std::size_t acc_stride,
               std::size_t rows, std::size_t k_blk, std::size_t c4_count,
               const std::uint8_t* v_prefetch, MicroKernelFn fn, int row_blk, int col_blk) {
  const std::size_t col_step = static_cast<std::size_t>(col_blk) * 16;
  for (std::size_t r0 = 0; r0 < rows; r0 += static_cast<std::size_t>(row_blk)) {
    const std::size_t r_rem = rows - r0;
    const int r_cur = r_rem >= static_cast<std::size_t>(row_blk)
                          ? row_blk
                          : static_cast<int>(r_rem);
    for (std::size_t c0 = 0; c0 < k_blk;) {
      // Column tail: fall back to single-column (16-lane) tiles when fewer
      // than col_blk * 16 columns remain.
      const bool full_cols = c0 + col_step <= k_blk;
      const int cb_cur = full_cols ? col_blk : 1;
      const std::size_t c_advance = full_cols ? col_step : 16;
      MicroKernelArgs args;
      args.v = v_panel + r0 * v_stride;
      args.v_stride = v_stride;
      args.u = u_panel + c0 * 4;
      args.u_stride = u_stride;
      args.acc = acc + r0 * acc_stride + c0;
      args.acc_stride = acc_stride;
      args.c4_count = c4_count;
      args.v_prefetch = v_prefetch != nullptr ? v_prefetch + r0 * v_stride : nullptr;
      if (fn != nullptr && r_cur == row_blk && cb_cur == col_blk) {
        fn(args);
      } else if (fn != nullptr) {
        // Row/column tail: reuse the (1, cb_cur) kernel per remaining row.
        MicroKernelFn fn1 = get_vnni_microkernel(1, cb_cur);
        for (int r = 0; r < r_cur; ++r) {
          MicroKernelArgs one = args;
          one.v = args.v + static_cast<std::size_t>(r) * v_stride;
          one.acc = args.acc + static_cast<std::size_t>(r) * acc_stride;
          one.v_prefetch = nullptr;
          fn1(one);
        }
      } else {
        scalar_microkernel(args, r_cur, cb_cur);
      }
      c0 += c_advance;
    }
  }
}

}  // namespace

bool Int8GemmBlocking::valid() const {
  if (row_blk <= 0 || col_blk <= 0) return false;
  if (!microkernel_combo_supported(row_blk, col_blk)) return false;
  if (static_cast<std::size_t>(row_blk) * col_blk + col_blk >= 31) return false;
  if (n_blk == 0 || n_blk % static_cast<std::size_t>(row_blk) != 0) return false;
  if (c_blk == 0 || c_blk % kChanBlock != 0) return false;
  if (k_blk == 0 || k_blk % (static_cast<std::size_t>(col_blk) * 16) != 0) return false;
  if (c_blk * k_blk > 512u * 512u) return false;
  return true;
}

std::string Int8GemmBlocking::to_string() const {
  return "Nblk=" + std::to_string(n_blk) + " Cblk=" + std::to_string(c_blk) +
         " Kblk=" + std::to_string(k_blk) + " row=" + std::to_string(row_blk) +
         " col=" + std::to_string(col_blk) + (nt_store ? " nt" : "") +
         (prefetch ? " pf" : "");
}

void batched_int8_gemm(const TransformedInputLayout& vl, const std::uint8_t* v,
                       const PackedFilterLayout& ul, const std::int8_t* u,
                       const std::int32_t* comp, const TransformedOutputLayout& zl,
                       std::int32_t* z, const Int8GemmBlocking& blocking, ThreadPool* pool,
                       Int8GemmScratch* scratch) {
  assert(blocking.valid());
  assert(vl.c_blk == blocking.c_blk && vl.n_blk == blocking.n_blk);
  assert(ul.c_blk == blocking.c_blk && ul.k_blk == blocking.k_blk);
  assert(vl.c_blocks == ul.c_blocks && vl.t_elems == ul.t_elems && vl.t_elems == zl.t_elems);

  const std::size_t t_elems = vl.t_elems;
  const std::size_t n_blocks = vl.n_blocks;
  const std::size_t c_blocks = vl.c_blocks;
  const std::size_t k_blocks = ul.k_blocks;
  const std::size_t n_blk = blocking.n_blk;
  const std::size_t c_blk = blocking.c_blk;
  const std::size_t k_blk = blocking.k_blk;
  const std::size_t k_real = zl.k_blocks * kChanBlock;
  const std::size_t k_padded = k_blocks * k_blk;
  const std::size_t c4_count = c_blk / 4;
  const std::size_t v_panel_sz = n_blk * c_blk;       // bytes
  const std::size_t u_panel_sz = c_blk * k_blk;       // bytes (c_blk/4 rows x k_blk*4)

  MicroKernelFn fn = get_vnni_microkernel(blocking.row_blk, blocking.col_blk);
  const bool nt = blocking.nt_store && fn != nullptr;

  // Section 4.4: tasks are (n-block, k-block, t) triples; each task owns one
  // Nblk x Kblk accumulator and the full reduction over channel blocks, so
  // tasks are fully independent and statically partitioned.
  const std::size_t total_tasks = n_blocks * k_blocks * t_elems;
  const std::size_t num_threads = pool != nullptr ? pool->num_threads() : 1;
  // Accumulator scratch: caller-owned when provided (steady-state inference
  // is then allocation-free), local otherwise (one-shot callers, tuner).
  Int8GemmScratch local_scratch;
  Int8GemmScratch& sc = scratch != nullptr ? *scratch : local_scratch;
  sc.ensure(num_threads, n_blk * k_blk);

  auto worker = [&](std::size_t tid, std::size_t nw) {
    // Covers the whole task loop including the Z scatter: everything between
    // the transform stages is "multiply" in the Figure 10 sense.
    ProfileSpan span(ProfileStage::kGemm);
    std::int32_t* acc = sc.per_thread[tid].data();
    const Range range = static_partition(total_tasks, nw, tid);
    for (std::size_t task = range.begin; task < range.end; ++task) {
      // kb innermost: consecutive tasks reuse the same (nb, t) V panels while
      // sweeping filter blocks, keeping V in L2 across the kb loop.
      const std::size_t nb = task / (k_blocks * t_elems);
      const std::size_t t = (task / k_blocks) % t_elems;
      const std::size_t kb = task % k_blocks;

      // Accumulator initialization carries the filter-side compensation term
      // of Eq. 9 so the hot loop never sees it.
      const std::int32_t* comp_row = comp + t * k_padded + kb * k_blk;
      for (std::size_t r = 0; r < n_blk; ++r) {
        std::memcpy(acc + r * k_blk, comp_row, k_blk * sizeof(std::int32_t));
      }

      for (std::size_t cb = 0; cb < c_blocks; ++cb) {
        const std::uint8_t* v_panel =
            v + ((nb * c_blocks + cb) * t_elems + t) * v_panel_sz;
        const std::int8_t* u_panel =
            u + ((cb * k_blocks + kb) * t_elems + t) * u_panel_sz;
        const std::uint8_t* v_next = nullptr;
        if (blocking.prefetch) {
          // Prefetch target: the panel the *next* channel block will read
          // (v_{i+1,k} in the paper's notation), or the next task's first.
          if (cb + 1 < c_blocks) {
            v_next = v + ((nb * c_blocks + cb + 1) * t_elems + t) * v_panel_sz;
          } else if (task + 1 < range.end && kb + 1 == k_blocks) {
            const std::size_t nb2 = (task + 1) / (k_blocks * t_elems);
            const std::size_t t2 = ((task + 1) / k_blocks) % t_elems;
            v_next = v + (nb2 * c_blocks * t_elems + t2) * v_panel_sz;
          }
        }
        run_panel(v_panel, c_blk, u_panel, k_blk * 4, acc, k_blk, n_blk, k_blk, c4_count,
                  v_next, fn, blocking.row_blk, blocking.col_blk);
      }

      // Scatter the finished accumulator into the transformed-output layout
      // ([K/64] x N x T x 64) one 64-byte line at a time (Section 4.3.2).
      for (std::size_t r = 0; r < n_blk; ++r) {
        const std::size_t n = nb * n_blk + r;
        if (n >= zl.n_padded) break;
        for (std::size_t k0 = 0; k0 < k_blk; k0 += 16) {
          const std::size_t k = kb * k_blk + k0;
          if (k >= k_real) break;
          store_line(z + zl.offset(n, t, k), acc + r * k_blk + k0, nt);
        }
      }
    }
    if (nt) store_fence();
  };

  if (pool != nullptr) {
    pool->run(worker);
  } else {
    worker(0, 1);
  }
}

void int8_gemm_n_block(const std::uint8_t* v_block, std::size_t c_blocks,
                       std::size_t t_elems, const PackedFilterLayout& ul,
                       const std::int8_t* u, const std::int32_t* comp, std::size_t k_real,
                       std::size_t kb_begin, std::size_t kb_end, std::int32_t* z_block,
                       const Int8GemmBlocking& blocking, std::int32_t* acc) {
  const std::size_t n_blk = blocking.n_blk;
  const std::size_t c_blk = blocking.c_blk;
  const std::size_t k_blk = blocking.k_blk;
  const std::size_t k_blocks = ul.k_blocks;
  const std::size_t k_padded = k_blocks * k_blk;
  const std::size_t c4_count = c_blk / 4;
  const std::size_t v_panel_sz = n_blk * c_blk;  // bytes
  const std::size_t u_panel_sz = c_blk * k_blk;  // bytes
  MicroKernelFn fn = get_vnni_microkernel(blocking.row_blk, blocking.col_blk);

  for (std::size_t kb = kb_begin; kb < kb_end; ++kb) {
    for (std::size_t t = 0; t < t_elems; ++t) {
      // Same accumulation order as the staged batched_int8_gemm task body:
      // compensation init, then the full channel-block reduction.
      const std::int32_t* comp_row = comp + t * k_padded + kb * k_blk;
      for (std::size_t r = 0; r < n_blk; ++r) {
        std::memcpy(acc + r * k_blk, comp_row, k_blk * sizeof(std::int32_t));
      }
      for (std::size_t cb = 0; cb < c_blocks; ++cb) {
        const std::uint8_t* v_panel = v_block + (cb * t_elems + t) * v_panel_sz;
        const std::int8_t* u_panel = u + ((cb * k_blocks + kb) * t_elems + t) * u_panel_sz;
        // No software prefetch: the V panel is L2-resident by construction.
        run_panel(v_panel, c_blk, u_panel, k_blk * 4, acc, k_blk, n_blk, k_blk, c4_count,
                  nullptr, fn, blocking.row_blk, blocking.col_blk);
      }
      // Scatter into the per-thread Z panel [k_grp/64][n_blk][T][64]; plain
      // stores — the panel is about to be re-read by the output transform.
      for (std::size_t r = 0; r < n_blk; ++r) {
        for (std::size_t k0 = 0; k0 < k_blk; k0 += 16) {
          const std::size_t k = kb * k_blk + k0;  // global output channel
          if (k >= k_real) break;
          const std::size_t k_local = k - kb_begin * k_blk;
          const std::size_t kb64 = k_local / kChanBlock;
          const std::size_t ki = k_local % kChanBlock;
          store_line(z_block + ((kb64 * n_blk + r) * t_elems + t) * kChanBlock + ki,
                     acc + r * k_blk + k0, /*nt=*/false);
        }
      }
    }
  }
}

void int8_gemm_packed(const std::uint8_t* a, std::size_t lda, const std::int8_t* b_packed,
                      const std::int32_t* comp, std::int32_t* c, std::size_t ldc,
                      std::size_t n, std::size_t cdim, std::size_t k,
                      const Int8GemmBlocking& blocking, ThreadPool* pool) {
  assert(cdim % 4 == 0 && k % 16 == 0);
  MicroKernelFn fn = get_vnni_microkernel(blocking.row_blk, blocking.col_blk);

  auto body = [&](std::size_t row_begin, std::size_t row_end) {
    // Baseline/direct GEMM entry point. Callers that already hold a kGemm
    // span (the vendor strip loop) are not double-counted: same-stage nested
    // spans are excluded from totals.
    ProfileSpan span(ProfileStage::kGemm);
    for (std::size_t r = row_begin; r < row_end; ++r) {
      if (comp != nullptr) {
        std::memcpy(c + r * ldc, comp, k * sizeof(std::int32_t));
      } else {
        std::memset(c + r * ldc, 0, k * sizeof(std::int32_t));
      }
    }
    run_panel(a + row_begin * lda, lda, b_packed, k * 4, c + row_begin * ldc, ldc,
              row_end - row_begin, k, cdim / 4, nullptr, fn, blocking.row_blk,
              blocking.col_blk);
  };

  if (pool != nullptr && n >= 2 * static_cast<std::size_t>(blocking.row_blk)) {
    pool->parallel_for(n, body);
  } else {
    body(0, n);
  }
}

void pack_b_vpdpbusd(const std::int8_t* b, std::size_t cdim, std::size_t k, std::int8_t* out) {
  const std::size_t c_pad = round_up(cdim, 4);
  const std::size_t k_pad = round_up(k, 16);
  std::memset(out, 0, (c_pad / 4) * k_pad * 4);
  for (std::size_t ci = 0; ci < cdim; ++ci) {
    for (std::size_t j = 0; j < k; ++j) {
      out[(ci / 4) * k_pad * 4 + j * 4 + (ci % 4)] = b[ci * k + j];
    }
  }
}

void compute_compensation(const std::int8_t* b, std::size_t cdim, std::size_t k,
                          std::int32_t* comp) {
  const std::size_t k_pad = round_up(k, 16);
  std::memset(comp, 0, k_pad * sizeof(std::int32_t));
  for (std::size_t ci = 0; ci < cdim; ++ci) {
    for (std::size_t j = 0; j < k; ++j) {
      comp[j] -= 128 * static_cast<std::int32_t>(b[ci * k + j]);
    }
  }
}

}  // namespace lowino

#include "gemm/vnni_kernels.h"

#include <cstring>

#include "common/cpu_features.h"

#ifdef LOWINO_COMPILE_AVX512
#include <immintrin.h>
#endif

namespace lowino {

#ifdef LOWINO_COMPILE_AVX512
namespace {

template <int RowBlk, int ColBlk>
void vnni_kernel(const MicroKernelArgs& a) {
  __m512i acc[RowBlk][ColBlk];
  for (int r = 0; r < RowBlk; ++r) {
    for (int c = 0; c < ColBlk; ++c) {
      acc[r][c] = _mm512_loadu_si512(a.acc + r * a.acc_stride + c * 16);
    }
  }
  if (a.v_prefetch != nullptr) {
    // Warm the next input panel while this one computes (Section 4.3.1).
    for (int r = 0; r < RowBlk; ++r) {
      _mm_prefetch(reinterpret_cast<const char*>(a.v_prefetch + r * a.v_stride), _MM_HINT_T1);
    }
  }
  for (std::size_t c4 = 0; c4 < a.c4_count; ++c4) {
    __m512i u[ColBlk];
    const std::int8_t* u_row = a.u + c4 * a.u_stride;
    for (int c = 0; c < ColBlk; ++c) {
      u[c] = _mm512_load_si512(u_row + c * 64);
    }
    for (int r = 0; r < RowBlk; ++r) {
      std::int32_t word;
      std::memcpy(&word, a.v + r * a.v_stride + c4 * 4, sizeof(word));
      const __m512i vb = _mm512_set1_epi32(word);
      for (int c = 0; c < ColBlk; ++c) {
        acc[r][c] = _mm512_dpbusd_epi32(acc[r][c], vb, u[c]);
      }
    }
  }
  for (int r = 0; r < RowBlk; ++r) {
    for (int c = 0; c < ColBlk; ++c) {
      _mm512_storeu_si512(a.acc + r * a.acc_stride + c * 16, acc[r][c]);
    }
  }
}

}  // namespace
#endif  // LOWINO_COMPILE_AVX512

namespace {

struct KernelEntry {
  int row_blk;
  int col_blk;
  MicroKernelFn fn;
};

#ifdef LOWINO_COMPILE_AVX512
#define LOWINO_KERNEL(R, C) {R, C, &vnni_kernel<R, C>}
#else
#define LOWINO_KERNEL(R, C) {R, C, nullptr}
#endif

// Register budget: R*C accumulators + C filter regs + 1 broadcast <= 32.
constexpr KernelEntry kKernels[] = {
    LOWINO_KERNEL(1, 1),  LOWINO_KERNEL(2, 1),  LOWINO_KERNEL(4, 1),  LOWINO_KERNEL(6, 1),
    LOWINO_KERNEL(8, 1),  LOWINO_KERNEL(12, 1), LOWINO_KERNEL(16, 1),
    LOWINO_KERNEL(1, 2),  LOWINO_KERNEL(2, 2),  LOWINO_KERNEL(4, 2),  LOWINO_KERNEL(6, 2),
    LOWINO_KERNEL(8, 2),  LOWINO_KERNEL(12, 2), LOWINO_KERNEL(14, 2),
    LOWINO_KERNEL(1, 3),  LOWINO_KERNEL(2, 3),  LOWINO_KERNEL(4, 3),  LOWINO_KERNEL(6, 3),
    LOWINO_KERNEL(8, 3),
    LOWINO_KERNEL(1, 4),  LOWINO_KERNEL(2, 4),  LOWINO_KERNEL(3, 4),  LOWINO_KERNEL(4, 4),
    LOWINO_KERNEL(6, 4),
    LOWINO_KERNEL(1, 6),  LOWINO_KERNEL(2, 6),  LOWINO_KERNEL(4, 6),
    LOWINO_KERNEL(1, 8),  LOWINO_KERNEL(2, 8),
};

#undef LOWINO_KERNEL

}  // namespace

MicroKernelFn get_vnni_microkernel(int row_blk, int col_blk) {
  if (!cpu_features().has_vnni_kernels()) return nullptr;
  for (const KernelEntry& e : kKernels) {
    if (e.row_blk == row_blk && e.col_blk == col_blk) return e.fn;
  }
  return nullptr;
}

bool microkernel_combo_supported(int row_blk, int col_blk) {
  for (const KernelEntry& e : kKernels) {
    if (e.row_blk == row_blk && e.col_blk == col_blk) return true;
  }
  return false;
}

void scalar_microkernel(const MicroKernelArgs& a, int row_blk, int col_blk) {
  const int kcols = col_blk * 16;
  for (std::size_t c4 = 0; c4 < a.c4_count; ++c4) {
    const std::int8_t* u_row = a.u + c4 * a.u_stride;
    for (int r = 0; r < row_blk; ++r) {
      const std::uint8_t* v = a.v + r * a.v_stride + c4 * 4;
      std::int32_t* acc = a.acc + r * a.acc_stride;
      for (int k = 0; k < kcols; ++k) {
        // Packed layout: 4 int8 per output channel k within this c4 group.
        const std::int8_t* u4 = u_row + k * 4;
        acc[k] += static_cast<std::int32_t>(v[0]) * u4[0] +
                  static_cast<std::int32_t>(v[1]) * u4[1] +
                  static_cast<std::int32_t>(v[2]) * u4[2] +
                  static_cast<std::int32_t>(v[3]) * u4[3];
      }
    }
  }
}

}  // namespace lowino

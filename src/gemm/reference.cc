#include "gemm/reference.h"

#include <cassert>

namespace lowino {

void ref_gemm_u8s8(std::span<const std::uint8_t> a, std::span<const std::int8_t> b,
                   std::span<std::int32_t> c, std::size_t n, std::size_t cdim, std::size_t k) {
  assert(a.size() >= n * cdim && b.size() >= cdim * k && c.size() >= n * k);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      std::int32_t acc = 0;
      for (std::size_t l = 0; l < cdim; ++l) {
        acc += static_cast<std::int32_t>(a[i * cdim + l]) *
               static_cast<std::int32_t>(b[l * k + j]);
      }
      c[i * k + j] = acc;
    }
  }
}

void ref_gemm_s16s16(std::span<const std::int16_t> a, std::span<const std::int16_t> b,
                     std::span<std::int32_t> c, std::size_t n, std::size_t cdim, std::size_t k) {
  assert(a.size() >= n * cdim && b.size() >= cdim * k && c.size() >= n * k);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      std::int32_t acc = 0;
      for (std::size_t l = 0; l < cdim; ++l) {
        acc += static_cast<std::int32_t>(a[i * cdim + l]) *
               static_cast<std::int32_t>(b[l * k + j]);
      }
      c[i * k + j] = acc;
    }
  }
}

void ref_gemm_f32(std::span<const float> a, std::span<const float> b, std::span<float> c,
                  std::size_t n, std::size_t cdim, std::size_t k) {
  assert(a.size() >= n * cdim && b.size() >= cdim * k && c.size() >= n * k);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      float acc = 0.0f;
      for (std::size_t l = 0; l < cdim; ++l) {
        acc += a[i * cdim + l] * b[l * k + j];
      }
      c[i * k + j] = acc;
    }
  }
}

}  // namespace lowino

#include "gemm/fp32_gemm.h"

#include <cstring>

#include "common/cpu_features.h"
#include "parallel/thread_pool.h"

#ifdef LOWINO_COMPILE_AVX512
#include <immintrin.h>
#endif

namespace lowino {
namespace {

#ifdef LOWINO_COMPILE_AVX512

/// Register-blocked FMA microkernel: RowBlk x (ColBlk*16) tile of C.
template <int RowBlk, int ColBlk>
void f32_kernel(const float* a, std::size_t lda, const float* b, std::size_t ldb, float* c,
                std::size_t ldc, std::size_t cdim) {
  __m512 acc[RowBlk][ColBlk];
  for (int r = 0; r < RowBlk; ++r) {
    for (int cc = 0; cc < ColBlk; ++cc) acc[r][cc] = _mm512_setzero_ps();
  }
  for (std::size_t l = 0; l < cdim; ++l) {
    __m512 bv[ColBlk];
    const float* b_row = b + l * ldb;
    for (int cc = 0; cc < ColBlk; ++cc) bv[cc] = _mm512_loadu_ps(b_row + cc * 16);
    for (int r = 0; r < RowBlk; ++r) {
      const __m512 av = _mm512_set1_ps(a[r * lda + l]);
      for (int cc = 0; cc < ColBlk; ++cc) {
        acc[r][cc] = _mm512_fmadd_ps(av, bv[cc], acc[r][cc]);
      }
    }
  }
  for (int r = 0; r < RowBlk; ++r) {
    for (int cc = 0; cc < ColBlk; ++cc) {
      _mm512_storeu_ps(c + r * ldc + cc * 16, acc[r][cc]);
    }
  }
}

void f32_rows_avx512(const float* a, std::size_t lda, const float* b, std::size_t ldb,
                     float* c, std::size_t ldc, std::size_t rows, std::size_t cdim,
                     std::size_t k) {
  std::size_t r0 = 0;
  for (; r0 + 6 <= rows; r0 += 6) {
    std::size_t c0 = 0;
    for (; c0 + 64 <= k; c0 += 64) {
      f32_kernel<6, 4>(a + r0 * lda, lda, b + c0, ldb, c + r0 * ldc + c0, ldc, cdim);
    }
    for (; c0 + 16 <= k; c0 += 16) {
      f32_kernel<6, 1>(a + r0 * lda, lda, b + c0, ldb, c + r0 * ldc + c0, ldc, cdim);
    }
  }
  for (; r0 < rows; ++r0) {
    std::size_t c0 = 0;
    for (; c0 + 64 <= k; c0 += 64) {
      f32_kernel<1, 4>(a + r0 * lda, lda, b + c0, ldb, c + r0 * ldc + c0, ldc, cdim);
    }
    for (; c0 + 16 <= k; c0 += 16) {
      f32_kernel<1, 1>(a + r0 * lda, lda, b + c0, ldb, c + r0 * ldc + c0, ldc, cdim);
    }
  }
}
#endif  // LOWINO_COMPILE_AVX512

void f32_rows_scalar(const float* a, std::size_t lda, const float* b, std::size_t ldb,
                     float* c, std::size_t ldc, std::size_t rows, std::size_t cdim,
                     std::size_t k, std::size_t k_from) {
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = k_from; j < k; ++j) c[i * ldc + j] = 0.0f;
    for (std::size_t l = 0; l < cdim; ++l) {
      const float av = a[i * lda + l];
      const float* b_row = b + l * ldb;
      float* c_row = c + i * ldc;
      for (std::size_t j = k_from; j < k; ++j) c_row[j] += av * b_row[j];
    }
  }
}

void f32_rows(const float* a, std::size_t lda, const float* b, std::size_t ldb, float* c,
              std::size_t ldc, std::size_t rows, std::size_t cdim, std::size_t k) {
#ifdef LOWINO_COMPILE_AVX512
  if (cpu_features().has_avx512_kernels()) {
    const std::size_t k_vec = k & ~std::size_t{15};
    if (k_vec > 0) f32_rows_avx512(a, lda, b, ldb, c, ldc, rows, cdim, k_vec);
    if (k_vec < k) f32_rows_scalar(a, lda, b, ldb, c, ldc, rows, cdim, k, k_vec);
    return;
  }
#endif
  f32_rows_scalar(a, lda, b, ldb, c, ldc, rows, cdim, k, 0);
}

}  // namespace

void fp32_gemm(const float* a, std::size_t lda, const float* b, std::size_t ldb, float* c,
               std::size_t ldc, std::size_t n, std::size_t cdim, std::size_t k,
               ThreadPool* pool) {
  if (pool != nullptr && n >= 12) {
    pool->parallel_for(n, [&](std::size_t begin, std::size_t end) {
      f32_rows(a + begin * lda, lda, b, ldb, c + begin * ldc, ldc, end - begin, cdim, k);
    });
  } else {
    f32_rows(a, lda, b, ldb, c, ldc, n, cdim, k);
  }
}

}  // namespace lowino

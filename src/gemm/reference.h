// Scalar reference GEMMs for unit testing the optimized kernels.
#pragma once

#include <cstdint>
#include <span>

namespace lowino {

/// C[n][k] = sum_c A[n][c] * B[c][k], A uint8 (row-major N x C), B int8
/// (row-major C x K), C int32 (row-major N x K). Mirrors vpdpbusd semantics
/// (unsigned x signed -> signed 32-bit accumulation).
void ref_gemm_u8s8(std::span<const std::uint8_t> a, std::span<const std::int8_t> b,
                   std::span<std::int32_t> c, std::size_t n, std::size_t cdim, std::size_t k);

/// Same with int16 operands (the up-casting baseline's arithmetic).
void ref_gemm_s16s16(std::span<const std::int16_t> a, std::span<const std::int16_t> b,
                     std::span<std::int32_t> c, std::size_t n, std::size_t cdim, std::size_t k);

/// FP32 reference.
void ref_gemm_f32(std::span<const float> a, std::span<const float> b, std::span<float> c,
                  std::size_t n, std::size_t cdim, std::size_t k);

}  // namespace lowino

// AVX-512 VNNI register-blocked microkernels (Section 4.3.2 / Figures 6-7).
//
// A microkernel computes a RowBlk x (ColBlk*16) int32 accumulator tile:
//
//   acc[r][k] += sum over c4 groups of 4 channels:
//                dot4( v[r][c4*4 .. c4*4+3] (uint8), u_packed[c4][k] (int8) )
//
// exactly the vpdpbusd pattern of Figure 1: one 32-bit broadcast from the
// input panel `v` per row, ColBlk aligned 64-byte loads from the packed filter
// panel `u`, RowBlk x ColBlk vpdpbusd per channel group. The register budget
// follows the paper: RowBlk*ColBlk accumulators + ColBlk filter registers + 1
// broadcast register <= 32 zmm ("row_blk x col_blk + col_blk < 31" plus the
// auxiliary broadcast register, Section 4.3.4).
//
// Kernels are template instantiations over (RowBlk, ColBlk) selected through a
// runtime dispatch table — the template family takes the role of the paper's
// JIT: fully unrolled straight-line code per configuration.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lowino {

struct MicroKernelArgs {
  const std::uint8_t* v = nullptr;  ///< RowBlk rows of the input panel
  std::size_t v_stride = 0;         ///< bytes between consecutive v rows
  const std::int8_t* u = nullptr;   ///< packed filter panel (c4-major)
  std::size_t u_stride = 0;         ///< bytes between consecutive c4 rows of u
  std::int32_t* acc = nullptr;      ///< RowBlk x (ColBlk*16) accumulator tile
  std::size_t acc_stride = 0;       ///< int32 elements between acc rows
  std::size_t c4_count = 0;         ///< number of 4-channel groups to process
  const std::uint8_t* v_prefetch = nullptr;  ///< next v panel (optional)
};

using MicroKernelFn = void (*)(const MicroKernelArgs&);

/// Returns the VNNI microkernel for (row_blk, col_blk), or nullptr when the
/// combination is not instantiated (register budget violated / not in table)
/// or the CPU lacks VNNI.
MicroKernelFn get_vnni_microkernel(int row_blk, int col_blk);

/// True when (row_blk, col_blk) is in the instantiated table (ignoring CPU).
bool microkernel_combo_supported(int row_blk, int col_blk);

/// Portable fallback with identical semantics (used on non-VNNI hosts and as
/// the test oracle for the intrinsic kernels).
void scalar_microkernel(const MicroKernelArgs& args, int row_blk, int col_blk);

}  // namespace lowino

// Blocked batched INT8 GEMM (Section 4.3).
//
// The Winograd matrix-multiplication stage is a batch of T = alpha^2
// independent tall-and-skinny GEMMs  Z_t = V_t x U_t  (V_t: N x C uint8,
// U_t: C x K int8). This module implements the paper's design:
//   * cache blocking (Nblk, Cblk, Kblk) with an L2-resident accumulator,
//   * register blocking (row_blk, col_blk) via the VNNI microkernels,
//   * compensation-initialized accumulators (Eq. 9),
//   * non-temporal scatter stores into the transformed-output layout,
//   * software prefetch of the next input panel,
//   * static multi-core partitioning over (Nblk x Kblk x T) tasks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/aligned_buffer.h"
#include "tensor/layout.h"

namespace lowino {

class ThreadPool;

/// Persistent per-thread accumulator scratch for batched_int8_gemm. Owned by
/// the convolution object (next to the fused workspace arena) so steady-state
/// execute() calls are allocation-free; ensure() only re-allocates when the
/// thread count or blocking grows.
struct Int8GemmScratch {
  std::vector<AlignedBuffer<std::int32_t>> per_thread;

  void ensure(std::size_t num_threads, std::size_t acc_elems) {
    if (per_thread.size() < num_threads) per_thread.resize(num_threads);
    for (auto& buf : per_thread) buf.ensure(acc_elems);
  }
};

/// Tuneable blocking parameters (Section 4.3.4). Defaults are sensible for
/// typical layer shapes; the auto-tuner (src/tuning) searches this space.
struct Int8GemmBlocking {
  // Defaults follow what the auto-tuner picks on the representative Table 2
  // layers; adapt_blocking() clamps them to small layer shapes.
  std::size_t n_blk = 96;   ///< rows of V per cache block (multiple of row_blk)
  std::size_t c_blk = 256;  ///< channels per cache block (multiple of 64)
  std::size_t k_blk = 128;  ///< filter columns per cache block (multiple of col_blk*16)
  int row_blk = 6;          ///< register tile rows
  int col_blk = 4;          ///< register tile columns (x16 lanes)
  bool nt_store = true;     ///< non-temporal scatter stores
  bool prefetch = true;     ///< software prefetch of the next V panel

  /// Checks the paper's constraints: register budget row*col + col < 31,
  /// divisibility requirements, and cache bound c_blk * k_blk <= 512^2.
  bool valid() const;
  std::string to_string() const;
};

/// Runs the batched GEMM over the blocked layouts:
///   Z[n][t][k] = comp[t][k] + sum_c V[n][t][c] * U[t][c][k]
/// for n < vl tiles, t < T, k < zl.k_blocks*64. `comp` has shape
/// [T][k_padded] where k_padded = ul.k_blocks * ul.k_blk. Rows of V beyond the
/// real tile count are computed but simply never read downstream.
/// Requirements: vl.c_blk == blocking.c_blk, ul layout blocked with
/// (blocking.c_blk, blocking.k_blk), vl.n_blk == blocking.n_blk.
void batched_int8_gemm(const TransformedInputLayout& vl, const std::uint8_t* v,
                       const PackedFilterLayout& ul, const std::int8_t* u,
                       const std::int32_t* comp, const TransformedOutputLayout& zl,
                       std::int32_t* z, const Int8GemmBlocking& blocking,
                       ThreadPool* pool = nullptr, Int8GemmScratch* scratch = nullptr);

/// Block-level GEMM for one n-block slice (the fused streaming path).
///
/// `v_block` is a per-thread V panel [c_blocks][T][n_blk][c_blk] (the staged
/// layout with the leading n-block index fixed). Computes, for every filter
/// block kb in [kb_begin, kb_end) and every position t, the full channel
/// reduction with the same panel shapes and accumulation order as
/// batched_int8_gemm (=> bit-identical int32 results) and scatters into the
/// caller's Z panel `z_block` with layout [k_grp/64][n_blk][T][64], where
/// k_grp = (kb_end - kb_begin) * k_blk local output channels. Columns beyond
/// `k_real` global channels (K padded to 64) are skipped, exactly like the
/// staged scatter. `acc` is caller-provided n_blk x k_blk scratch.
void int8_gemm_n_block(const std::uint8_t* v_block, std::size_t c_blocks,
                       std::size_t t_elems, const PackedFilterLayout& ul,
                       const std::int8_t* u, const std::int32_t* comp, std::size_t k_real,
                       std::size_t kb_begin, std::size_t kb_end, std::int32_t* z_block,
                       const Int8GemmBlocking& blocking, std::int32_t* acc);

/// Plain single GEMM on row-major uint8 A (n x c, stride lda) and a packed
/// filter panel B ((c/4) x (k*4) int8, vpdpbusd layout):
///   C[i][j] = comp[j] + sum_l A[i][l] * B[l][j]
/// with arbitrary n (row tails handled), c % 4 == 0, k % 16 == 0.
/// Used by the INT8 direct convolution and the fused vendor-style baseline.
void int8_gemm_packed(const std::uint8_t* a, std::size_t lda, const std::int8_t* b_packed,
                      const std::int32_t* comp, std::int32_t* c, std::size_t ldc,
                      std::size_t n, std::size_t cdim, std::size_t k,
                      const Int8GemmBlocking& blocking, ThreadPool* pool = nullptr);

/// Packs a row-major int8 matrix B (c x k) into the vpdpbusd layout used by
/// int8_gemm_packed: out[(c4)*k*4 + j*4 + cr] = B[c4*4+cr][j], zero-padding
/// c to a multiple of 4 and k to a multiple of 16.
/// `out` must hold round_up(c,4)/4 * round_up(k,16)*4 int8 values.
void pack_b_vpdpbusd(const std::int8_t* b, std::size_t cdim, std::size_t k, std::int8_t* out);

/// Computes the compensation row comp[j] = -128 * sum_c B[c][j] (Eq. 9) from a
/// row-major int8 matrix; `comp` holds round_up(k,16) int32.
void compute_compensation(const std::int8_t* b, std::size_t cdim, std::size_t k,
                          std::int32_t* comp);

}  // namespace lowino

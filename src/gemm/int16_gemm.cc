#include "gemm/int16_gemm.h"

#include <cstring>

#include "common/aligned_buffer.h"
#include "common/cpu_features.h"
#include "parallel/thread_pool.h"

#ifdef LOWINO_COMPILE_AVX512
#include <immintrin.h>
#endif

namespace lowino {
namespace {

#ifdef LOWINO_COMPILE_AVX512
/// 4 x 64 register tile; one vpmaddwd + vpaddd per (row, col, channel pair).
template <int RowBlk, int ColBlk>
void s16_kernel(const std::int16_t* a, std::size_t lda, const std::int16_t* b,
                std::size_t b_stride, std::int32_t* c, std::size_t ldc,
                std::size_t c2_count) {
  __m512i acc[RowBlk][ColBlk];
  for (int r = 0; r < RowBlk; ++r) {
    for (int cc = 0; cc < ColBlk; ++cc) acc[r][cc] = _mm512_setzero_si512();
  }
  for (std::size_t c2 = 0; c2 < c2_count; ++c2) {
    __m512i bv[ColBlk];
    const std::int16_t* b_row = b + c2 * b_stride;
    for (int cc = 0; cc < ColBlk; ++cc) {
      bv[cc] = _mm512_loadu_si512(b_row + cc * 32);
    }
    for (int r = 0; r < RowBlk; ++r) {
      std::int32_t word;
      std::memcpy(&word, a + r * lda + c2 * 2, sizeof(word));
      const __m512i av = _mm512_set1_epi32(word);
      for (int cc = 0; cc < ColBlk; ++cc) {
        acc[r][cc] = _mm512_add_epi32(acc[r][cc], _mm512_madd_epi16(av, bv[cc]));
      }
    }
  }
  for (int r = 0; r < RowBlk; ++r) {
    for (int cc = 0; cc < ColBlk; ++cc) {
      _mm512_storeu_si512(c + r * ldc + cc * 16, acc[r][cc]);
    }
  }
}
#endif

void s16_rows_scalar(const std::int16_t* a, std::size_t lda, const std::int16_t* b_packed,
                     std::int32_t* c, std::size_t ldc, std::size_t rows, std::size_t cdim,
                     std::size_t k) {
  const std::size_t c2_count = cdim / 2;
  for (std::size_t i = 0; i < rows; ++i) {
    std::memset(c + i * ldc, 0, k * sizeof(std::int32_t));
    for (std::size_t c2 = 0; c2 < c2_count; ++c2) {
      const std::int16_t a0 = a[i * lda + c2 * 2];
      const std::int16_t a1 = a[i * lda + c2 * 2 + 1];
      const std::int16_t* b_row = b_packed + c2 * k * 2;
      for (std::size_t j = 0; j < k; ++j) {
        c[i * ldc + j] += static_cast<std::int32_t>(a0) * b_row[j * 2] +
                          static_cast<std::int32_t>(a1) * b_row[j * 2 + 1];
      }
    }
  }
}

}  // namespace

void pack_b_vpmaddwd(const std::int16_t* b, std::size_t cdim, std::size_t k,
                     std::int16_t* out) {
  const std::size_t c_pad = round_up(cdim, 2);
  const std::size_t k_pad = round_up(k, 16);
  std::memset(out, 0, (c_pad / 2) * k_pad * 2 * sizeof(std::int16_t));
  for (std::size_t ci = 0; ci < cdim; ++ci) {
    for (std::size_t j = 0; j < k; ++j) {
      out[(ci / 2) * k_pad * 2 + j * 2 + (ci % 2)] = b[ci * k + j];
    }
  }
}

void int16_gemm_packed(const std::int16_t* a, std::size_t lda, const std::int16_t* b_packed,
                       std::int32_t* c, std::size_t ldc, std::size_t n, std::size_t cdim,
                       std::size_t k, ThreadPool* pool) {
  auto body = [&](std::size_t begin, std::size_t end) {
#ifdef LOWINO_COMPILE_AVX512
    if (cpu_features().has_avx512_kernels() && k % 16 == 0 && cdim % 2 == 0) {
      const std::size_t c2_count = cdim / 2;
      const std::size_t b_stride = k * 2;
      std::size_t r0 = begin;
      for (; r0 + 4 <= end; r0 += 4) {
        std::size_t c0 = 0;
        for (; c0 + 64 <= k; c0 += 64) {
          s16_kernel<4, 4>(a + r0 * lda, lda, b_packed + c0 * 2, b_stride,
                           c + r0 * ldc + c0, ldc, c2_count);
        }
        for (; c0 < k; c0 += 16) {
          s16_kernel<4, 1>(a + r0 * lda, lda, b_packed + c0 * 2, b_stride,
                           c + r0 * ldc + c0, ldc, c2_count);
        }
      }
      for (; r0 < end; ++r0) {
        std::size_t c0 = 0;
        for (; c0 + 64 <= k; c0 += 64) {
          s16_kernel<1, 4>(a + r0 * lda, lda, b_packed + c0 * 2, b_stride,
                           c + r0 * ldc + c0, ldc, c2_count);
        }
        for (; c0 < k; c0 += 16) {
          s16_kernel<1, 1>(a + r0 * lda, lda, b_packed + c0 * 2, b_stride,
                           c + r0 * ldc + c0, ldc, c2_count);
        }
      }
      return;
    }
#endif
    s16_rows_scalar(a + begin * lda, lda, b_packed, c + begin * ldc, ldc, end - begin, cdim,
                    k);
  };

  if (pool != nullptr && n >= 8) {
    pool->parallel_for(n, body);
  } else {
    body(0, n);
  }
}

}  // namespace lowino

// INT16 GEMM via vpmaddwd — the arithmetic of the up-casting baseline
// (ncnn-style, Section 2.3). Half the multiply throughput of vpdpbusd:
// each 512-bit instruction performs 32 INT16 MACs vs 64 INT8 MACs.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lowino {

class ThreadPool;

/// Packs row-major int16 B (c x k) for vpmaddwd: pairs of channels
/// interleaved per output column. `out` holds round_up(c,2)/2 * round_up(k,16)*2
/// int16 values; padding is zero-filled.
void pack_b_vpmaddwd(const std::int16_t* b, std::size_t cdim, std::size_t k,
                     std::int16_t* out);

/// C[i][j] = sum_l A[i][l] * B[l][j]; A row-major int16 (n x c, stride lda),
/// B packed by pack_b_vpmaddwd, C row-major int32. c % 2 == 0, k % 16 == 0.
void int16_gemm_packed(const std::int16_t* a, std::size_t lda, const std::int16_t* b_packed,
                       std::int32_t* c, std::size_t ldc, std::size_t n, std::size_t cdim,
                       std::size_t k, ThreadPool* pool = nullptr);

}  // namespace lowino

// AVX-512 FP32 GEMM used by the full-precision baselines (direct im2col
// convolution and FP32 Winograd). Row-major A (n x c, stride lda), row-major
// B (c x k, stride ldb, k % 16 == 0 recommended), C = A * B (row-major,
// stride ldc). Not a general BLAS — exactly what the baselines need.
#pragma once

#include <cstddef>

namespace lowino {

class ThreadPool;

void fp32_gemm(const float* a, std::size_t lda, const float* b, std::size_t ldb, float* c,
               std::size_t ldc, std::size_t n, std::size_t cdim, std::size_t k,
               ThreadPool* pool = nullptr);

}  // namespace lowino
